package durable

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func appendPayload(t *testing.T, s *Store, payload string) uint64 {
	t.Helper()
	seq, err := s.Append([]byte(payload))
	if err != nil {
		t.Fatalf("append %q: %v", payload, err)
	}
	return seq
}

func TestRecordRoundTrip(t *testing.T) {
	t.Parallel()
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xa5}, 1000)}
	for i, p := range payloads {
		framed := appendRecord(nil, uint64(i+1), p)
		if len(framed) != recordSize(p) {
			t.Fatalf("payload %d: framed %d bytes, recordSize says %d", i, len(framed), recordSize(p))
		}
		seq, got, n, err := decodeRecord(framed, 1<<20)
		if err != nil || n != len(framed) || seq != uint64(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("payload %d: decode = (%d, %q, %d, %v)", i, seq, got, n, err)
		}
	}
	// Two records framed back to back decode in order.
	framed := appendRecord(appendRecord(nil, 1, []byte("a")), 2, []byte("bb"))
	seq1, _, n1, err := decodeRecord(framed, 1<<20)
	if err != nil || seq1 != 1 {
		t.Fatalf("first: (%d, %v)", seq1, err)
	}
	seq2, _, _, err := decodeRecord(framed[n1:], 1<<20)
	if err != nil || seq2 != 2 {
		t.Fatalf("second: (%d, %v)", seq2, err)
	}
}

func TestRecordDecodeRejects(t *testing.T) {
	t.Parallel()
	full := appendRecord(nil, 7, []byte("hello"))
	// Every proper prefix is a torn tail.
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := decodeRecord(full[:cut], 1<<20); !errors.Is(err, errShortRecord) {
			t.Fatalf("cut %d: %v, want errShortRecord", cut, err)
		}
	}
	// Every single-bit flip fails the CRC (or, in the length prefix, the
	// length checks) — never decodes to a different record.
	for i := 0; i < len(full)*8; i++ {
		mut := append([]byte(nil), full...)
		mut[i/8] ^= 1 << (i % 8)
		seq, payload, _, err := decodeRecord(mut, 1<<20)
		if err == nil {
			t.Fatalf("bit flip %d decoded to (%d, %q)", i, seq, payload)
		}
	}
	// A length prefix above the limit is rejected before reading the body.
	if _, _, _, err := decodeRecord(full, 3); !errors.Is(err, errOversizedRecord) {
		t.Fatalf("max 3: %v, want errOversizedRecord", err)
	}
	// A garbage length prefix near 2^32 must not wrap into a small int.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, _, err := decodeRecord(huge, 1<<20); !errors.Is(err, errOversizedRecord) {
		t.Fatalf("huge prefix: %v, want errOversizedRecord", err)
	}
}

// TestStoreAppendRecover pins the plain crashless cycle: append, reopen,
// replay, append more, reopen again.
func TestStoreAppendRecover(t *testing.T) {
	t.Parallel()
	sink := NewMemSink()
	s, rec, err := Open(sink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 0 || rec.Snapshot != nil || len(rec.Records) != 0 || rec.Torn {
		t.Fatalf("fresh open recovered %+v", rec)
	}
	for i := 1; i <= 5; i++ {
		if seq := appendPayload(t, s, fmt.Sprintf("r%d", i)); seq != uint64(i) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	s.Close()

	s, rec, err = Open(sink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 5 || len(rec.Records) != 5 || rec.Torn {
		t.Fatalf("recovered %+v", rec)
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) || string(r.Payload) != fmt.Sprintf("r%d", i+1) {
			t.Fatalf("record %d = (%d, %q)", i, r.Seq, r.Payload)
		}
	}
	if seq := appendPayload(t, s, "r6"); seq != 6 {
		t.Fatalf("post-recovery append returned seq %d", seq)
	}
	s.Close()
	_, rec, err = Open(sink, Options{})
	if err != nil || rec.Seq != 6 {
		t.Fatalf("after third open: seq %d, %v", rec.Seq, err)
	}
}

// TestStoreCheckpointPrunes pins the rotation: after a checkpoint, old
// segments and snapshots are gone, recovery starts from the snapshot, and
// appends continue the sequence.
func TestStoreCheckpointPrunes(t *testing.T) {
	t.Parallel()
	sink := NewMemSink()
	s, _, err := Open(sink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendPayload(t, s, "a")
	appendPayload(t, s, "b")
	if err := s.Checkpoint([]byte("state@2")); err != nil {
		t.Fatal(err)
	}
	appendPayload(t, s, "c")
	if err := s.Checkpoint([]byte("state@3")); err != nil {
		t.Fatal(err)
	}
	appendPayload(t, s, "d")
	s.Close()

	names, _ := sink.List()
	for _, name := range names {
		if v, ok := parseName(name, snapPrefix, snapSuffix); ok && v < 3 {
			t.Fatalf("stale snapshot %s survived checkpoint", name)
		}
		if v, ok := parseName(name, segPrefix, segSuffix); ok && v < 3 {
			t.Fatalf("stale segment %s survived checkpoint", name)
		}
	}
	_, rec, err := Open(sink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapSeq != 3 || string(rec.Snapshot) != "state@3" {
		t.Fatalf("recovered snapshot (%d, %q)", rec.SnapSeq, rec.Snapshot)
	}
	if rec.Seq != 4 || len(rec.Records) != 1 || string(rec.Records[0].Payload) != "d" {
		t.Fatalf("recovered tail %+v", rec)
	}
}

// TestStoreCorruptionDetected pins the two unrecoverable shapes: a record
// gap, and a valid record beyond a torn region.
func TestStoreCorruptionDetected(t *testing.T) {
	t.Parallel()

	t.Run("gap", func(t *testing.T) {
		t.Parallel()
		sink := NewMemSink()
		f, _ := sink.Create(segName(0))
		f.Write(appendRecord(nil, 1, []byte("a")))
		f.Write(appendRecord(nil, 3, []byte("c"))) // 2 missing
		f.Close()
		if _, _, err := Open(sink, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("valid record after tear", func(t *testing.T) {
		t.Parallel()
		sink := NewMemSink()
		f, _ := sink.Create(segName(0))
		f.Write(appendRecord(nil, 1, []byte("a")))
		torn := appendRecord(nil, 2, []byte("bb"))
		f.Write(torn[:len(torn)-2]) // tear record 2
		f.Close()
		// The tear alone is fine (a crash mid-append)…
		_, rec, err := Open(sink.Clone(), Options{})
		if err != nil || rec.Seq != 1 || !rec.Torn {
			t.Fatalf("torn tail: %+v, %v", rec, err)
		}
		// …but a later segment holding the next record means the tear was
		// not a tail: refuse to silently drop acknowledged history.
		f2, _ := sink.Create(segName(2))
		f2.Write(appendRecord(nil, 3, []byte("c")))
		f2.Close()
		if _, _, err := Open(sink, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("record after tear: %v, want ErrCorrupt", err)
		}
	})

	t.Run("torn snapshot falls back", func(t *testing.T) {
		t.Parallel()
		sink := NewMemSink()
		s, _, err := Open(sink, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendPayload(t, s, "a")
		if err := s.Checkpoint([]byte("good@1")); err != nil {
			t.Fatal(err)
		}
		appendPayload(t, s, "b")
		s.Close()
		// A half-written newer snapshot (no checkpoint completed) must not
		// shadow the good chain.
		f, _ := sink.Create(snapName(9))
		bad := appendRecord(nil, 9, []byte("evil"))
		f.Write(bad[:len(bad)-1])
		f.Close()
		_, rec, err := Open(sink, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rec.SnapSeq != 1 || string(rec.Snapshot) != "good@1" || rec.Seq != 2 || !rec.Torn {
			t.Fatalf("recovered %+v", rec)
		}
	})
}

// opsLog is a Sink decorator recording the physical operation order, for
// asserting write-ordering invariants.
type opsLog struct {
	inner Sink
	ops   []string
}

func (l *opsLog) Create(name string) (File, error) {
	l.ops = append(l.ops, "create "+name)
	f, err := l.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &opsFile{log: l, name: name, inner: f}, nil
}
func (l *opsLog) ReadAll(name string) ([]byte, error) { return l.inner.ReadAll(name) }
func (l *opsLog) List() ([]string, error)             { return l.inner.List() }
func (l *opsLog) Remove(name string) error {
	l.ops = append(l.ops, "remove "+name)
	return l.inner.Remove(name)
}
func (l *opsLog) Sync() error {
	l.ops = append(l.ops, "syncdir")
	return l.inner.Sync()
}

type opsFile struct {
	log   *opsLog
	name  string
	inner File
}

func (f *opsFile) Write(p []byte) (int, error) { return f.inner.Write(p) }
func (f *opsFile) Sync() error {
	f.log.ops = append(f.log.ops, "fsync "+f.name)
	return f.inner.Sync()
}
func (f *opsFile) Close() error { return f.inner.Close() }

// TestCheckpointNeverRemovesBeforeSnapshotSync pins the rotation's write
// ordering: no WAL segment or snapshot is removed until the new snapshot
// has been fsynced and the directory fsynced after it. Removing earlier
// would leave a crash window with no recoverable chain on disk.
func TestCheckpointNeverRemovesBeforeSnapshotSync(t *testing.T) {
	t.Parallel()
	log := &opsLog{inner: NewMemSink()}
	s, _, err := Open(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendPayload(t, s, "a")
	if err := s.Checkpoint([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	appendPayload(t, s, "b")
	if err := s.Checkpoint([]byte("s2")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	fsynced := map[string]bool{}
	dirSyncedAfterFsync := map[string]bool{}
	for _, op := range log.ops {
		switch {
		case strings.HasPrefix(op, "fsync "):
			fsynced[strings.TrimPrefix(op, "fsync ")] = true
		case op == "syncdir":
			for name := range fsynced {
				dirSyncedAfterFsync[name] = true
			}
		case strings.HasPrefix(op, "remove "):
			// At the moment anything is removed, the most recent snapshot
			// must be durable: fsynced, and the directory entry fsynced.
			var latest string
			for name := range fsynced {
				if strings.HasPrefix(name, snapPrefix) && name > latest {
					latest = name
				}
			}
			if latest == "" {
				t.Fatalf("removal %q before any snapshot fsync\nops: %v", op, log.ops)
			}
			if !dirSyncedAfterFsync[latest] {
				t.Fatalf("removal %q before directory sync of %s\nops: %v", op, latest, log.ops)
			}
		}
	}
}

// TestStoreCrashMatrix is the storage-level crash sweep: a fixed script of
// appends and checkpoints is killed at every single unit (byte or metadata
// op), and recovery from the remains must yield a clean prefix of the
// script — snapshot rotation included — with the store reusable afterwards.
func TestStoreCrashMatrix(t *testing.T) {
	t.Parallel()
	script := func(s *Store) {
		// Interleave appends and checkpoints so crash points land inside
		// every phase of the rotation (snapshot write, segment swap, prune).
		for i := 1; i <= 12; i++ {
			if _, err := s.Append([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
				return
			}
			if i%3 == 0 {
				if err := s.Checkpoint([]byte(fmt.Sprintf("snap-%02d", i))); err != nil {
					return
				}
			}
		}
	}
	// Reference pass: measure the unit count of the full run.
	ref := NewCrashBudget(-1)
	s, _, err := Open(ref.Wrap(NewMemSink()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	script(s)
	s.Close()
	units := ref.Units()
	if units < 200 {
		t.Fatalf("script consumed only %d units; matrix too small", units)
	}

	for u := int64(0); u <= units; u++ {
		budget := NewCrashBudget(u)
		sink := NewMemSink()
		s, _, err := Open(budget.Wrap(sink), Options{})
		if err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("unit %d: open: %v", u, err)
			}
			continue // crashed before the store was even open
		}
		script(s)
		s.Close()

		// Recover from the raw sink — the disk the dead machine left.
		s2, rec, err := Open(sink, Options{})
		if err != nil {
			t.Fatalf("unit %d: recovery: %v", u, err)
		}
		// The recovered state must be a prefix: every replayed record must
		// carry exactly the payload the script wrote for its sequence.
		if rec.Snapshot != nil {
			want := fmt.Sprintf("snap-%02d", rec.SnapSeq)
			if string(rec.Snapshot) != want {
				t.Fatalf("unit %d: snapshot at %d = %q, want %q", u, rec.SnapSeq, rec.Snapshot, want)
			}
		}
		for _, r := range rec.Records {
			want := fmt.Sprintf("payload-%02d", r.Seq)
			if string(r.Payload) != want {
				t.Fatalf("unit %d: record %d = %q, want %q", u, r.Seq, r.Payload, want)
			}
		}
		// The recovered store accepts appends at the right sequence.
		seq, err := s2.Append([]byte("after"))
		if err != nil || seq != rec.Seq+1 {
			t.Fatalf("unit %d: post-recovery append = (%d, %v), want seq %d", u, seq, err, rec.Seq+1)
		}
		s2.Close()
	}
}

// TestDirSinkParity runs the recovery cycle against the real filesystem.
func TestDirSinkParity(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sinks, err := ShardSinks(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 2 {
		t.Fatalf("ShardSinks returned %d sinks", len(sinks))
	}
	s, _, err := Open(sinks[0], Options{SyncEachAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	appendPayload(t, s, "a")
	appendPayload(t, s, "b")
	if err := s.Checkpoint([]byte("state@2")); err != nil {
		t.Fatal(err)
	}
	appendPayload(t, s, "c")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, rec, err := Open(sinks[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rec.SnapSeq != 2 || string(rec.Snapshot) != "state@2" ||
		rec.Seq != 3 || len(rec.Records) != 1 || string(rec.Records[0].Payload) != "c" {
		t.Fatalf("recovered %+v", rec)
	}
	// The sibling shard's sink is untouched and independent.
	if _, rec1, err := Open(sinks[1], Options{}); err != nil || rec1.Seq != 0 {
		t.Fatalf("shard 1: %+v, %v", rec1, err)
	}
}
