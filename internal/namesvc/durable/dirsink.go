package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// DirSink is the OS-backed Sink: one directory, flat files, real fsync.
type DirSink struct {
	dir string
}

// NewDirSink creates (if needed) and opens a directory as a Sink.
func NewDirSink(dir string) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &DirSink{dir: dir}, nil
}

// Dir returns the directory path.
func (s *DirSink) Dir() string { return s.dir }

// Create implements Sink.
func (s *DirSink) Create(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, name),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadAll implements Sink.
func (s *DirSink) ReadAll(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, name))
}

// List implements Sink.
func (s *DirSink) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Remove implements Sink; a missing file is not an error.
func (s *DirSink) Remove(name string) error {
	err := os.Remove(filepath.Join(s.dir, name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// Sync implements Sink: it fsyncs the directory so file creations and
// removals are themselves durable, not just the data inside the files.
func (s *DirSink) Sync() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ShardSinks creates one DirSink per shard under dir (shard-0000,
// shard-0001, …) — the layout cmd/blnamed points -data-dir at.
func ShardSinks(dir string, shards int) ([]Sink, error) {
	if shards < 1 {
		return nil, fmt.Errorf("durable: shards must be >= 1, got %d", shards)
	}
	sinks := make([]Sink, shards)
	for i := range sinks {
		s, err := NewDirSink(filepath.Join(dir, fmt.Sprintf("shard-%04d", i)))
		if err != nil {
			return nil, err
		}
		sinks[i] = s
	}
	return sinks, nil
}
