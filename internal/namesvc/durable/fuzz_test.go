package durable

import (
	"bytes"
	"testing"
)

// FuzzWALRecordDecode pins the WAL frame decoder's safety contract under
// arbitrary bytes: it never panics, never over-reads, and — the atomicity
// property — any successful decode is exactly the re-encoding of what it
// returned, so a corrupt, truncated, or oversized record can never be
// half-applied as something else.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add(appendRecord(nil, 1, []byte("hello")), 1<<20)
	f.Add(appendRecord(nil, ^uint64(0), nil), 64)
	torn := appendRecord(nil, 7, bytes.Repeat([]byte{0xee}, 100))
	f.Add(torn[:len(torn)-3], 1<<20)
	flipped := appendRecord(nil, 3, []byte("abcdef"))
	flipped[recordHeaderLen] ^= 0x40
	f.Add(flipped, 1<<20)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}, 1<<20)
	f.Add([]byte{}, 0)

	f.Fuzz(func(t *testing.T, data []byte, max int) {
		if max < 0 {
			max = -max
		}
		seq, payload, n, err := decodeRecord(data, max)
		if err != nil {
			return
		}
		if n < recordHeaderLen+recordTrailerLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(payload) > max {
			t.Fatalf("payload %d exceeds max %d", len(payload), max)
		}
		// Atomicity: the decoded record re-encodes to the exact bytes
		// consumed. A decoder that accepted a frame it could not have
		// produced would let corruption masquerade as history.
		if !bytes.Equal(appendRecord(nil, seq, payload), data[:n]) {
			t.Fatalf("decode of %d bytes is not its own re-encoding", n)
		}
	})
}
