package namesvc

import (
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"ballsintoleaves/internal/namesvc/durable"
)

// cornerWorkload churns a service enough to dirty every durability surface:
// grants across epochs, releases, and a journal window.
func cornerWorkload(t *testing.T, svc *Service) []Grant {
	t.Helper()
	var held []Grant
	for round := 0; round < 6; round++ {
		for c := uint64(1); c <= 5; c++ {
			if _, err := svc.Acquire(uint64(round)*31+c*2654435761, nil); err != nil {
				t.Fatal(err)
			}
		}
		grants, err := svc.CloseEpochs()
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, grants...)
		for len(held) > 3 {
			g := held[0]
			held = held[1:]
			if err := svc.Release(g.Client, g.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	return held
}

// TestIntervalFsyncCloseOrdering pins the Close contract under FsyncInterval:
// the background syncer is stopped before the final flush+checkpoint, Close
// is idempotent, and the image a clean Close leaves behind recovers from the
// snapshot alone — zero WAL records to replay.
func TestIntervalFsyncCloseOrdering(t *testing.T) {
	t.Parallel()
	cfg := Config{Shards: 2, ShardCap: 16, Seed: 11, Journal: true, JournalLimit: 8}
	raw := make([]*durable.MemSink, cfg.Shards)
	sinks := make([]durable.Sink, cfg.Shards)
	for i := range raw {
		raw[i] = durable.NewMemSink()
		sinks[i] = raw[i]
	}
	cfg.Durable = &Durability{
		Sinks:      sinks,
		Fsync:      FsyncInterval,
		FsyncEvery: time.Millisecond, // many ticks race the workload below
		Logf:       t.Logf,
	}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cornerWorkload(t, svc)
	time.Sleep(5 * time.Millisecond) // let the interval syncer actually tick
	want := captureAll(svc)

	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Idempotent: a second Close must not double-stop the syncer, re-run the
	// checkpoint against a closed store, or return a new error.
	if err := svc.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// The image recovers from the final checkpoint alone: a valid snapshot
	// and an empty WAL tail, so restart cost is O(snapshot), not O(history).
	for i, sink := range raw {
		store, rec, err := durable.Open(sink.Clone(), durable.Options{})
		if err != nil {
			t.Fatalf("shard %d: reopen image: %v", i, err)
		}
		if rec.Snapshot == nil || len(rec.Records) != 0 || rec.Torn {
			t.Fatalf("shard %d: clean close left snapshot=%v, %d records, torn=%v",
				i, rec.Snapshot != nil, len(rec.Records), rec.Torn)
		}
		store.Close()
	}

	// And a full service recovery over the image reproduces the exact
	// pre-close state, journal window included.
	cfg.Durable = &Durability{Sinks: sinks, Fsync: FsyncInterval, Logf: t.Logf}
	svc2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := captureAll(svc2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state diverged:\n got %+v\nwant %+v", got, want)
	}
}

// startServerOn serves an existing Service on a loopback socket — the
// durable-restart shape, where the ledger already holds state no connection
// owns.
func startServerOn(t *testing.T, svc *Service) string {
	t.Helper()
	srv, err := NewServer(ServerConfig{Service: svc, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ln.Close()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestReclaimThenConnectionDies covers the restart-handshake corner: a
// rejected reclaim must NOT bind the name to the connection (its death
// leaves the name held), while a successful reclaim must (its death releases
// the name through the ordinary teardown, like any granted name).
func TestReclaimThenConnectionDies(t *testing.T) {
	t.Parallel()
	const owner = 77
	svc, err := New(Config{Shards: 1, ShardCap: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the "server restarted" state: the ledger holds a name for a
	// client no live connection represents.
	if _, err := svc.Acquire(owner, nil); err != nil {
		t.Fatal(err)
	}
	grants, err := svc.CloseEpoch(0)
	if err != nil || len(grants) != 1 {
		t.Fatalf("seed grant: %v, %d grants", err, len(grants))
	}
	orphan := grants[0].Name
	addr := startServerOn(t, svc)

	// Connection 1: wrong client. The reclaim is rejected, and to prove the
	// rejection bound nothing we give the connection a grant of its own —
	// teardown must release exactly that one.
	c1, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.AcquireSync(55); err != nil {
		t.Fatal(err)
	}
	if err := c1.ReclaimSync(owner+1, orphan); err == nil {
		t.Fatal("reclaim by wrong client succeeded")
	}
	if svc.Stats().Assigned != 2 {
		t.Fatalf("assigned = %d before teardown, want 2", svc.Stats().Assigned)
	}
	c1.Close()
	waitFor(t, "teardown of connection 1", func() bool { return svc.Stats().Assigned == 1 })
	if err := svc.Reclaim(owner, orphan); err != nil {
		t.Fatalf("rejected reclaim unbound the name: %v", err)
	}

	// Connection 2: right client, successful reclaim, then dies without
	// releasing. Teardown must reclaim the name for the namespace.
	c2, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.ReclaimSync(owner, orphan); err != nil {
		t.Fatalf("reclaim by owner: %v", err)
	}
	c2.Close()
	waitFor(t, "teardown of connection 2", func() bool { return svc.Stats().Assigned == 0 })
}

// TestRecoverySnapshotWithEmptyTailSegments recovers from the image a crash
// leaves immediately after a checkpoint rotation: a valid snapshot plus WAL
// segments that are all empty files (the freshly rotated segment, and any
// pre-allocated successors). Empty segments are a no-op, not a tear.
func TestRecoverySnapshotWithEmptyTailSegments(t *testing.T) {
	t.Parallel()
	cfg := Config{Shards: 1, ShardCap: 16, Seed: 9, Journal: true, JournalLimit: 8}
	sink := durable.NewMemSink()
	cfg.Durable = &Durability{
		Sinks: []durable.Sink{sink}, Fsync: FsyncPerEpoch,
		SnapshotEvery: 1 << 20, // only explicit checkpoints
		Logf:          t.Logf,
	}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cornerWorkload(t, svc)
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := captureAll(svc)

	// Kill -9: clone the sink as-is (snapshot + empty rotated segment) and
	// scatter extra empty segments after it, as a crash between segment
	// pre-allocation and first append would leave.
	image := sink.Clone()
	seq := walSeqs(svc)[0]
	for _, later := range []uint64{seq + 1, seq + 64} {
		f, err := image.Create(fmt.Sprintf("wal-%016x.log", later))
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	svc.Close()

	// The store itself reports a snapshot-only recovery, no torn tail.
	probe, rec, err := durable.Open(image.Clone(), durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || len(rec.Records) != 0 || rec.Torn || rec.Seq != seq {
		t.Fatalf("recovered snapshot=%v, %d records, torn=%v, seq %d (want %d)",
			rec.Snapshot != nil, len(rec.Records), rec.Torn, rec.Seq, seq)
	}
	probe.Close()

	// And the service rebuilt over that image matches the live state and
	// keeps working durably.
	cfg.Durable = &Durability{Sinks: []durable.Sink{image}, Fsync: FsyncPerEpoch, Logf: t.Logf}
	svc2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := captureAll(svc2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state diverged:\n got %+v\nwant %+v", got, want)
	}
	if _, err := svc2.Acquire(0xbeef, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.CloseEpoch(0); err != nil {
		t.Fatal(err)
	}
	if st := svc2.Stats(); st.WALFailures != 0 {
		t.Fatalf("recovered service degraded: %+v", st)
	}
}
