package namesvc

import (
	"fmt"

	"ballsintoleaves/internal/wire"
)

// Replica surface: the hooks internal/namesvc/repl uses to keep follower
// Services byte-identical to a leader's. The unit of replication is the
// sealed WAL record (durability.go) — the leader taps them at the source
// via SetRecordHook, and followers apply them here through the same
// replay-and-prove path recovery uses, so a replica's ledger, digest,
// and journal are the leader's or the apply fails loudly.
//
// Positions order the stream without any extra metadata: every record
// carries ≥1 event and seals the shard's cumulative (assigns + releases)
// after it, so that count is a strictly increasing per-shard sequence
// number — recoverable from local state alone after any restart.

// ShardPosition returns a shard's replication position: its cumulative
// assigned + released event count.
func (s *Service) ShardPosition(shardIdx int) uint64 {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.led.assigns + sh.led.releases
}

// Positions appends every shard's replication position to dst (which may
// be nil) and returns it.
func (s *Service) Positions(dst []uint64) []uint64 {
	for i := range s.shards {
		dst = append(dst, s.ShardPosition(i))
	}
	return dst
}

// Position returns the service-wide replication position: the sum of the
// per-shard positions. Within one leader's production it is strictly
// increasing record over record, so (term of last record, Position) is
// the election freshness order.
func (s *Service) Position() uint64 {
	var sum uint64
	for i := range s.shards {
		sum += s.ShardPosition(i)
	}
	return sum
}

// ShardSnapshotPayload seals a snapshot of the shard's current full state
// — the catch-up payload RestoreReplicaShard accepts on a replica. The
// returned buffer is freshly allocated (snapshots are rare).
func (s *Service) ShardSnapshotPayload(shardIdx int) []byte {
	sh := s.shards[shardIdx]
	var w wire.Writer
	sh.mu.Lock()
	appendWALSnapshot(&w, shardIdx, sh.sealLocked(), sh.led.holder, sh.led.journalWindow())
	sh.mu.Unlock()
	return w.Bytes()
}

// ApplyReplicated applies one sealed record payload (as observed by a
// leader's record hook) to a replica shard. It returns (false, nil) for a
// record the shard already covers (positions at or below the current one
// — normal after a snapshot overshoots the stream), (true, nil) after
// applying and re-proving the seal, and an error for a position gap,
// corrupt payload, or seal divergence. An error means this replica needs
// a snapshot resync; the shard may hold partially applied state until
// RestoreReplicaShard overwrites it.
//
// The record is also appended to the shard's own durable store, so a
// replica's WAL chain is the byte-for-byte record stream it acknowledged
// and a restart recovers it like any single node.
func (s *Service) ApplyReplicated(shardIdx int, payload []byte) (bool, error) {
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		return false, fmt.Errorf("namesvc: shard %d outside 0..%d", shardIdx, len(s.shards)-1)
	}
	seal, entries, err := decodeWALRecord(payload, shardIdx)
	if err != nil {
		return false, err
	}
	if len(entries) == 0 {
		return false, fmt.Errorf("namesvc: shard %d: replicated record with no events", shardIdx)
	}
	pos := seal.assigns + seal.releases
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.led.assigns + sh.led.releases
	if pos <= cur {
		return false, nil
	}
	if pos-uint64(len(entries)) != cur {
		return false, fmt.Errorf("namesvc: shard %d: record spans positions %d..%d, replica at %d",
			shardIdx, pos-uint64(len(entries)), pos, cur)
	}
	// Replay through the ordinary ledger operations with staging off (the
	// record is already sealed; re-staging it would log it twice), exactly
	// like recovery replay.
	staged := sh.led.staging
	sh.led.staging = false
	defer func() { sh.led.staging = staged }()
	for _, e := range entries {
		switch e.Op {
		case OpAssign:
			if e.Name < 1 || e.Name > sh.led.cap || sh.led.holderOf(e.Name) != 0 {
				return false, fmt.Errorf("namesvc: shard %d: replicated record assigns unassignable name %d",
					shardIdx, e.Name)
			}
			sh.led.assign(e.Epoch, e.ReqID, e.Client, e.Name)
		case OpRelease:
			if err := sh.led.release(e.Epoch, e.Client, e.Name); err != nil {
				return false, fmt.Errorf("namesvc: shard %d: replicated record: %w", shardIdx, err)
			}
		default:
			return false, fmt.Errorf("namesvc: shard %d: replicated record: unknown op %d", shardIdx, e.Op)
		}
	}
	sh.led.epoch = seal.epoch
	sh.nextID = seal.nextID
	sh.acquires = seal.acquires
	sh.absorbed = seal.absorbed
	if sh.led.digest != seal.digest {
		return false, fmt.Errorf("namesvc: shard %d: replicated digest %016x != sealed %016x",
			shardIdx, sh.led.digest, seal.digest)
	}
	if sh.led.assigns != seal.assigns || sh.led.releases != seal.releases {
		return false, fmt.Errorf("namesvc: shard %d: replicated counters (%d assigns, %d releases) != sealed (%d, %d)",
			shardIdx, sh.led.assigns, sh.led.releases, seal.assigns, seal.releases)
	}
	if d := sh.dur; d != nil && d.err == nil {
		if _, err := d.store.Append(payload); err != nil {
			d.fail(shardIdx, err)
		} else {
			d.records++
			d.sinceSnap++
			if d.sinceSnap >= d.snapEvery {
				s.checkpointLocked(shardIdx, sh)
			}
		}
	}
	return true, nil
}

// RestoreReplicaShard overwrites a replica shard with a leader snapshot
// payload (ShardSnapshotPayload) — catch-up for a fresh or diverged
// replica. The shard must have no queued requests (on a deposed leader,
// disconnect all clients first so teardown cancels them). The local
// durable chain is checkpointed onto the snapshot, physically pruning any
// divergent tail, so a restart recovers the restored state.
func (s *Service) RestoreReplicaShard(shardIdx int, payload []byte) error {
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		return fmt.Errorf("namesvc: shard %d outside 0..%d", shardIdx, len(s.shards)-1)
	}
	seal, holder, win, err := decodeWALSnapshot(payload, shardIdx)
	if err != nil {
		return err
	}
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.queued > 0 {
		return fmt.Errorf("namesvc: shard %d: %d requests queued during replica restore", shardIdx, sh.queued)
	}
	led := newLedger(s.cfg.ShardCap, s.cfg.Journal, s.cfg.JournalLimit)
	if err := led.restore(seal.epoch, holder, seal.digest, seal.assigns, seal.releases, win); err != nil {
		return fmt.Errorf("namesvc: shard %d: replica restore: %w", shardIdx, err)
	}
	led.staging = sh.led.staging || sh.dur != nil
	sh.led = led
	sh.nextID = seal.nextID
	sh.acquires = seal.acquires
	sh.absorbed = seal.absorbed
	// Cancelled request husks are all that can remain queued; recycle them.
	for _, r := range sh.pending {
		r.sink = nil
		sh.freeReq = append(sh.freeReq, r)
	}
	sh.pending = sh.pending[:0]
	if d := sh.dur; d != nil && d.err == nil {
		if err := d.store.Checkpoint(payload); err != nil {
			d.fail(shardIdx, err)
		} else {
			d.sinceSnap = 0
			d.snapshots++
		}
	}
	return nil
}
