package namesvc

import (
	"math/rand"
	"reflect"
	"testing"

	"ballsintoleaves/internal/core"
)

// traceOp is one step of a recorded arrival trace, replayable against any
// Service instance.
type traceOp struct {
	kind   byte // 'a'cquire, 'r'elease, 'c'ancel, 'e'poch(shard)
	client uint64
	name   int
	shard  int
}

// apply replays a trace. Acquire request IDs are per-shard sequences
// assigned in arrival order, so two instances fed the same trace issue the
// same IDs. reqs maps the trace's acquire order to the returned IDs for
// cancels.
func applyTrace(t *testing.T, svc *Service, trace []traceOp) {
	t.Helper()
	reqByClient := map[uint64]uint64{}
	for i, op := range trace {
		switch op.kind {
		case 'a':
			id, err := svc.Acquire(op.client, nil)
			if err != nil {
				t.Fatalf("trace[%d] acquire: %v", i, err)
			}
			reqByClient[op.client] = id
		case 'r':
			if err := svc.Release(op.client, op.name); err != nil {
				t.Fatalf("trace[%d] release: %v", i, err)
			}
		case 'c':
			svc.Cancel(op.client, reqByClient[op.client])
		case 'e':
			if _, err := svc.CloseEpoch(op.shard); err != nil {
				t.Fatalf("trace[%d] epoch: %v", i, err)
			}
		}
	}
}

// fixedTrace is a deterministic mixed workload over 2 shards: arrivals,
// epochs, releases derived from grants, a cancel, more epochs.
func fixedTrace(t *testing.T, svc *Service) {
	t.Helper()
	grants := map[uint64]Grant{} // client -> live grant
	closeAll := func() {
		gs, err := svc.CloseEpochs()
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range gs {
			grants[g.Client] = g
		}
	}
	for client := uint64(1); client <= 10; client++ {
		if _, err := svc.Acquire(client, nil); err != nil {
			t.Fatal(err)
		}
	}
	closeAll()
	// Release the even clients, cancel a queued request, re-acquire.
	for client := uint64(2); client <= 10; client += 2 {
		g := grants[client]
		if err := svc.Release(g.Client, g.Name); err != nil {
			t.Fatal(err)
		}
		delete(grants, client)
	}
	id, err := svc.Acquire(77, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Cancel(77, id)
	for client := uint64(20); client <= 24; client++ {
		if _, err := svc.Acquire(client, nil); err != nil {
			t.Fatal(err)
		}
	}
	closeAll()
	closeAll()
}

// TestReplayIdenticalLedgers pins the service's determinism guarantee: two
// instances with the same (seed, arrival trace, shards) produce identical
// per-shard assignment journals and digests.
func TestReplayIdenticalLedgers(t *testing.T) {
	t.Parallel()
	// RandomPaths makes every epoch genuinely seed-dependent (the default
	// hybrid runner decides failure-free batches with the deterministic
	// rank rule, where the seed never enters).
	cfg := Config{Shards: 2, ShardCap: 16, Seed: 99, Journal: true,
		Runner: CohortRunner{Strategy: core.RandomPaths}}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fixedTrace(t, a)
	fixedTrace(t, b)
	for s := 0; s < 2; s++ {
		ja, jb := a.ShardJournal(s), b.ShardJournal(s)
		if !reflect.DeepEqual(ja, jb) {
			t.Fatalf("shard %d journals differ:\n%v\nvs\n%v", s, ja, jb)
		}
		if len(ja) == 0 {
			t.Fatalf("shard %d journal empty — trace never touched it", s)
		}
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ: %x vs %x", a.Digest(), b.Digest())
	}
	// A different seed must produce a different assignment history.
	cfg.Seed = 100
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fixedTrace(t, c)
	if c.Digest() == a.Digest() {
		t.Fatal("different seeds produced identical ledgers")
	}
}

// TestCohortAndTransportRunnersAgree extends the repository's equivalence
// chain (sim ≡ runtime ≡ cohort ≡ loopback ≡ TCP) to the service layer: the
// in-process CohortRunner and the distributed TransportRunner (the public
// Protocol over a loopback transport, goroutine per batch member) must
// produce identical assignment ledgers for identical traffic.
func TestCohortAndTransportRunnersAgree(t *testing.T) {
	t.Parallel()
	base := Config{Shards: 2, ShardCap: 16, Seed: 7, Journal: true}
	fast := base
	fast.Runner = CohortRunner{}
	slow := base
	slow.Runner = TransportRunner{}
	a, err := New(fast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(slow)
	if err != nil {
		t.Fatal(err)
	}
	fixedTrace(t, a)
	fixedTrace(t, b)
	if a.Digest() != b.Digest() {
		t.Fatalf("cohort and transport runners diverged: %x vs %x", a.Digest(), b.Digest())
	}
	for s := 0; s < 2; s++ {
		if !reflect.DeepEqual(a.ShardJournal(s), b.ShardJournal(s)) {
			t.Fatalf("shard %d journals differ between runners", s)
		}
	}
}

// TestRandomizedInterleavingInvariants is the property test: randomized
// acquire/release/cancel/epoch interleavings, checked against a model for
// (1) grant uniqueness among live names, (2) reuse only after release, and
// (3) ledger replay equality for the recorded trace on a fresh instance.
func TestRandomizedInterleavingInvariants(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		rnd := rand.New(rand.NewSource(seed))
		cfg := Config{Shards: 3, ShardCap: 8, Seed: uint64(seed), Journal: true}
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}

		var trace []traceOp
		nextClient := uint64(0)
		live := map[int]Grant{}       // name -> grant
		everHeld := map[int]bool{}    // granted at least once
		canReuse := map[int]bool{}    // released since last grant
		queued := map[uint64]uint64{} // client -> reqID, not yet granted or cancelled

		grantsOf := func(shard int) {
			gs, err := svc.CloseEpoch(shard)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, g := range gs {
				if _, dup := live[g.Name]; dup {
					t.Fatalf("seed %d: name %d granted while live", seed, g.Name)
				}
				if everHeld[g.Name] && !canReuse[g.Name] {
					t.Fatalf("seed %d: name %d reused without release", seed, g.Name)
				}
				if sh, _ := svc.ShardOfName(g.Name); sh != shard {
					t.Fatalf("seed %d: shard %d granted foreign name %d", seed, shard, g.Name)
				}
				live[g.Name] = g
				everHeld[g.Name] = true
				delete(canReuse, g.Name)
				delete(queued, g.Client)
			}
		}

		for step := 0; step < 400; step++ {
			switch r := rnd.Intn(10); {
			case r < 4: // acquire
				nextClient++
				client := nextClient
				id, err := svc.Acquire(client, nil)
				if err != nil {
					t.Fatal(err)
				}
				queued[client] = id
				trace = append(trace, traceOp{kind: 'a', client: client})
			case r < 7: // release a random live name
				for name, g := range live {
					if err := svc.Release(g.Client, name); err != nil {
						t.Fatalf("seed %d: release: %v", seed, err)
					}
					delete(live, name)
					canReuse[name] = true
					trace = append(trace, traceOp{kind: 'r', client: g.Client, name: name})
					break
				}
			case r < 8: // cancel a random queued request
				for client := range queued {
					svc.Cancel(client, queued[client])
					delete(queued, client)
					trace = append(trace, traceOp{kind: 'c', client: client})
					break
				}
			default: // close an epoch on a random shard
				shard := rnd.Intn(cfg.Shards)
				trace = append(trace, traceOp{kind: 'e', shard: shard})
				grantsOf(shard)
			}
		}
		// Drain: release everything, close every shard until quiet.
		for name, g := range live {
			if err := svc.Release(g.Client, name); err != nil {
				t.Fatal(err)
			}
			delete(live, name)
			canReuse[name] = true
			trace = append(trace, traceOp{kind: 'r', client: g.Client, name: name})
		}
		for s := 0; s < cfg.Shards; s++ {
			trace = append(trace, traceOp{kind: 'e', shard: s})
			grantsOf(s)
		}

		// Replay invariant: the recorded trace on a fresh instance yields
		// the identical ledger. (Releases in the recorded trace name the
		// exact grants, which determinism makes valid on the replica.)
		replica, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		applyTrace(t, replica, trace)
		if replica.Digest() != svc.Digest() {
			t.Fatalf("seed %d: replay digest %x != original %x", seed, replica.Digest(), svc.Digest())
		}
	}
}
