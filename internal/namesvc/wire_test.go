package namesvc

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"ballsintoleaves/internal/wire"
)

func TestWireRoundTrips(t *testing.T) {
	t.Parallel()
	var w wire.Writer

	w.Reset()
	appendSvcHello(&w)
	if err := decodeSvcHello(w.Bytes()); err != nil {
		t.Fatalf("hello: %v", err)
	}

	w.Reset()
	appendWelcome(&w, 4, 1024, RoleFollower, "127.0.0.1:4750")
	if shards, shardCap, role, leader, err := decodeWelcome(w.Bytes()); err != nil ||
		shards != 4 || shardCap != 1024 || role != RoleFollower || leader != "127.0.0.1:4750" {
		t.Fatalf("welcome = (%d, %d, %v, %q, %v)", shards, shardCap, role, leader, err)
	}

	w.Reset()
	appendAcquire(&w, 7, 99)
	if tag, client, err := decodeAcquire(w.Bytes()); err != nil || tag != 7 || client != 99 {
		t.Fatalf("acquire = (%d, %d, %v)", tag, client, err)
	}

	w.Reset()
	appendRelease(&w, 8, 312)
	if tag, name, err := decodeRelease(w.Bytes()); err != nil || tag != 8 || name != 312 {
		t.Fatalf("release = (%d, %d, %v)", tag, name, err)
	}

	w.Reset()
	appendStatsReq(&w, 9)
	if tag, err := decodeStatsReq(w.Bytes()); err != nil || tag != 9 {
		t.Fatalf("stats req = (%d, %v)", tag, err)
	}

	g := Grant{ReqID: 1, Client: 99, Shard: 2, Epoch: 5, Name: 2061}
	w.Reset()
	appendGrant(&w, 7, g)
	if tag, got, err := decodeGrant(w.Bytes()); err != nil || tag != 7 ||
		got.Name != g.Name || got.Shard != g.Shard || got.Epoch != g.Epoch {
		t.Fatalf("grant = (%d, %+v, %v)", tag, got, err)
	}

	w.Reset()
	appendReleased(&w, 8)
	if tag, err := decodeReleased(w.Bytes()); err != nil || tag != 8 {
		t.Fatalf("released = (%d, %v)", tag, err)
	}

	st := Stats{Shards: 4, ShardCap: 1024, Epochs: 17, Assigned: 12, Free: 4084,
		Pending: 3, Acquires: 100, Grants: 90, Releases: 78, Absorbed: 2,
		Digests: []uint64{1, 0xcbf29ce484222325, 3, 4}, WALRecords: 17, WALSnapshots: 2, WALFailures: 1}
	w.Reset()
	appendStatsRep(&w, 9, st)
	if tag, got, err := decodeStatsRep(w.Bytes()); err != nil || tag != 9 || !reflect.DeepEqual(got, st) {
		t.Fatalf("stats rep = (%d, %+v, %v)", tag, got, err)
	}

	w.Reset()
	appendReclaim(&w, 11, 99, 2061)
	if tag, client, name, err := decodeReclaim(w.Bytes()); err != nil || tag != 11 || client != 99 || name != 2061 {
		t.Fatalf("reclaim = (%d, %d, %d, %v)", tag, client, name, err)
	}

	w.Reset()
	appendReclaimed(&w, 11)
	if tag, err := decodeReclaimed(w.Bytes()); err != nil || tag != 11 {
		t.Fatalf("reclaimed = (%d, %v)", tag, err)
	}

	w.Reset()
	appendReject(&w, 10, RejectNotHeld, "name 3 is not held")
	if tag, code, msg, err := decodeReject(w.Bytes()); err != nil || tag != 10 ||
		code != RejectNotHeld || msg != "name 3 is not held" {
		t.Fatalf("reject = (%d, %v, %q, %v)", tag, code, msg, err)
	}
}

// TestWireCutPointsAreTruncated asserts the frame-layer error discipline:
// every proper prefix of every encoded op decodes to a clean error, never a
// panic and never a bogus success.
func TestWireCutPointsAreTruncated(t *testing.T) {
	t.Parallel()
	g := Grant{ReqID: 1, Client: 300, Shard: 3, Epoch: 300, Name: 300}
	st := Stats{Shards: 300, ShardCap: 300, Epochs: 300, Acquires: 300,
		Digests: []uint64{300, 300}, WALRecords: 300}
	encoders := map[string]func(*wire.Writer){
		"hello":     func(w *wire.Writer) { appendSvcHello(w) },
		"welcome":   func(w *wire.Writer) { appendWelcome(w, 300, 300, RoleLeader, "127.0.0.1:300") },
		"acquire":   func(w *wire.Writer) { appendAcquire(w, 300, 300) },
		"release":   func(w *wire.Writer) { appendRelease(w, 300, 300) },
		"statsreq":  func(w *wire.Writer) { appendStatsReq(w, 300) },
		"reclaim":   func(w *wire.Writer) { appendReclaim(w, 300, 300, 300) },
		"grant":     func(w *wire.Writer) { appendGrant(w, 300, g) },
		"released":  func(w *wire.Writer) { appendReleased(w, 300) },
		"reclaimed": func(w *wire.Writer) { appendReclaimed(w, 300) },
		"statsrep":  func(w *wire.Writer) { appendStatsRep(w, 300, st) },
		"reject":    func(w *wire.Writer) { appendReject(w, 300, RejectBusy, "busy busy") },
	}
	decoders := map[string]func([]byte) error{
		"hello":   decodeSvcHello,
		"welcome": func(b []byte) error { _, _, _, _, err := decodeWelcome(b); return err },
		"acquire": func(b []byte) error { _, _, err := decodeAcquire(b); return err },
		"release": func(b []byte) error { _, _, err := decodeRelease(b); return err },
		"statsreq": func(b []byte) error {
			_, err := decodeStatsReq(b)
			return err
		},
		"reclaim":   func(b []byte) error { _, _, _, err := decodeReclaim(b); return err },
		"grant":     func(b []byte) error { _, _, err := decodeGrant(b); return err },
		"released":  func(b []byte) error { _, err := decodeReleased(b); return err },
		"reclaimed": func(b []byte) error { _, err := decodeReclaimed(b); return err },
		"statsrep":  func(b []byte) error { _, _, err := decodeStatsRep(b); return err },
		"reject":    func(b []byte) error { _, _, _, err := decodeReject(b); return err },
	}
	for name, enc := range encoders {
		var w wire.Writer
		enc(&w)
		full := w.Bytes()
		dec := decoders[name]
		if err := dec(full); err != nil {
			t.Fatalf("%s: full frame failed: %v", name, err)
		}
		for cut := 1; cut < len(full); cut++ {
			err := dec(full[:cut])
			if err == nil {
				t.Fatalf("%s cut at %d decoded successfully", name, cut)
			}
			if !errors.Is(err, wire.ErrTruncated) {
				t.Fatalf("%s cut at %d: %v, want ErrTruncated", name, cut, err)
			}
		}
		// Trailing garbage is rejected too.
		if err := dec(append(append([]byte(nil), full...), 0xff)); err == nil {
			t.Fatalf("%s with trailing byte decoded successfully", name)
		}
	}
}

func TestWireSemanticRejections(t *testing.T) {
	t.Parallel()
	var w wire.Writer
	// Wrong protocol version.
	w.Byte(opHello)
	w.Uvarint(99)
	if err := decodeSvcHello(w.Bytes()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("hello version 99: %v", err)
	}
	// Zero client ID.
	w.Reset()
	appendAcquire(&w, 1, 0)
	if _, _, err := decodeAcquire(w.Bytes()); err == nil {
		t.Fatal("acquire with zero client decoded")
	}
	// Zero name.
	w.Reset()
	appendRelease(&w, 1, 0)
	if _, _, err := decodeRelease(w.Bytes()); err == nil {
		t.Fatal("release of name 0 decoded")
	}
	// Reject message length larger than the body.
	w.Reset()
	w.Byte(opReject)
	w.Uvarint(1)
	w.Uvarint(uint64(RejectBusy))
	w.Uvarint(1 << 30)
	if _, _, _, err := decodeReject(w.Bytes()); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("oversized reject message: %v, want ErrTruncated", err)
	}
}
