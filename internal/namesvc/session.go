package namesvc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ballsintoleaves/internal/rng"
)

// ErrOpTimeout is the error a Session op fails with when it cannot
// complete within SessionConfig.OpTimeout across however many
// reconnects fit in that window.
var ErrOpTimeout = errors.New("namesvc: session op timed out")

// ErrSessionClosed wraps ErrClientClosed for ops rejected because the
// session itself was closed; errors.Is(err, ErrClientClosed) holds.
var ErrSessionClosed = fmt.Errorf("%w: session closed", ErrClientClosed)

// SessionConfig parameterizes DialSession.
type SessionConfig struct {
	// Addrs are the cluster's client addresses, tried in order (after any
	// fresher leader hint) on every connect. Required, at least one.
	Addrs []string
	// Client is the per-connection configuration (timeout, flush window,
	// and the Dial hook fault-injection tests use).
	Client ClientConfig
	// OpTimeout bounds every operation end to end: an op that cannot
	// complete within it — across connection failures, redirects, and
	// retries — fails with ErrOpTimeout, and a timeout of an in-flight op
	// condemns the connection (the only way to notice an asymmetric
	// partition, where requests flow and responses vanish). Zero means 10s.
	OpTimeout time.Duration
	// ConnectTimeout bounds DialSession's initial connect across every
	// address and election wait. Zero means 30s. Reconnects after the
	// first success are unbounded: the session rides out any partition
	// and per-op timeouts bound what callers observe.
	ConnectTimeout time.Duration
	// BackoffBase/BackoffMax shape the reconnect backoff: delays double
	// from Base to Max with seed-deterministic jitter. Zero means
	// 25ms / 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed feeds the jitter stream, making reconnect timing reproducible
	// for a given seed (internal/adversary's determinism contract).
	Seed uint64
	// OnReconnect, when non-nil, observes every successful (re)connect:
	// the address reached and the attempt count this round took.
	OnReconnect func(addr string, attempt int)
	// OnGrantLost, when non-nil, observes every acknowledged grant the
	// session could not re-attach after a reconnect: the server revoked
	// it (connection-death absorption) while the session was away. This
	// is the hook duplicate detectors use to keep their accounting exact
	// across reconnects.
	OnGrantLost func(client uint64, name int)
	// Logf, when non-nil, receives session lifecycle log lines.
	Logf func(format string, args ...any)
}

func (cfg *SessionConfig) normalize() error {
	if len(cfg.Addrs) == 0 {
		return errors.New("namesvc: SessionConfig.Addrs is required")
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 30 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// SessionCounters are a Session's cumulative resilience statistics.
type SessionCounters struct {
	Reconnects uint64 // successful (re)connects after the first
	Redirects  uint64 // leader hints followed
	Reclaimed  uint64 // grants re-attached via reclaim after a reconnect
	Lost       uint64 // grants the server revoked while the session was away
	Retries    uint64 // ops resubmitted after a connection failure
	Timeouts   uint64 // ops failed with ErrOpTimeout
}

const (
	sessAcquire = iota
	sessRelease
	sessStats
)

// sessOp is one session operation: it survives connection failures by
// being requeued and resubmitted until it completes, times out, or fails
// with a semantic (non-connection) error.
type sessOp struct {
	kind     int
	client   uint64
	name     int
	deadline time.Time
	attempts int
	timedOut bool

	gcb func(Grant, error)
	ecb func(error)
	scb func(Stats, error)
}

// Session is a resilient client: a Client that survives the death of its
// connection. It reconnects with exponential backoff + jitter, follows
// leader hints (the wire-v4 welcome role and RejectNotLeader redirects),
// bounds every op with a timeout, and — the part that keeps the
// exactly-once story intact — re-attaches every acknowledged grant via
// the reclaim op before resubmitting any queued work, so a grant
// acknowledged before a failover is recovered, never re-acquired.
//
// Retry safety: acquires are safely retried because an undelivered grant
// is revoked by the server's connection-death absorption before its name
// can be re-granted; releases are retried with NotHeld-after-retry
// treated as success (the release landed, or the grant was revoked —
// either way the end state holds); and a release can never free another
// connection's grant because the server validates releases against the
// connection's own holdings.
type Session struct {
	cfg SessionConfig

	mu           sync.Mutex
	c            *Client        // current connection; nil while reconnecting
	held         map[int]uint64 // acknowledged grants: name -> client
	queue        []*sessOp      // awaiting (re)submission
	inflight     map[*sessOp]struct{}
	hint         string // freshest leader hint
	reconnecting bool
	closed       bool
	counters     SessionCounters
	jitter       *rng.Source
	shards       int
	shardCap     int

	done chan struct{} // closed by Close; stops janitor and backoff waits
	wg   sync.WaitGroup
}

// DialSession connects to the first reachable leader among cfg.Addrs
// (following hints through elections within cfg.ConnectTimeout) and
// starts the session machinery. After it returns, the session heals
// itself: callers never re-dial.
func DialSession(cfg SessionConfig) (*Session, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cfg.Addrs = append([]string(nil), cfg.Addrs...)
	s := &Session{
		cfg:      cfg,
		held:     make(map[int]uint64),
		inflight: make(map[*sessOp]struct{}),
		jitter:   rng.New(rng.DeriveSeed(cfg.Seed, 0x5e55)),
		done:     make(chan struct{}),
	}
	deadline := time.Now().Add(cfg.ConnectTimeout)
	backoff := cfg.BackoffBase
	for attempt := 1; ; attempt++ {
		c, addr := s.tryConnect()
		if c != nil {
			s.install(c, addr, attempt)
			break
		}
		if time.Now().Add(backoff).After(deadline) {
			close(s.done)
			return nil, fmt.Errorf("namesvc: no leader reachable within %v (addrs %v)",
				cfg.ConnectTimeout, cfg.Addrs)
		}
		time.Sleep(s.jitterBackoff(backoff))
		if backoff *= 2; backoff > cfg.BackoffMax {
			backoff = cfg.BackoffMax
		}
	}
	s.wg.Add(1)
	go s.janitor()
	return s, nil
}

// Shards returns the cluster's shard count (from the latest welcome).
func (s *Session) Shards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards
}

// ShardCap returns the per-shard capacity (from the latest welcome).
func (s *Session) ShardCap() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardCap
}

// Capacity returns the total name-space size.
func (s *Session) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards * s.shardCap
}

// Counters returns a snapshot of the session's resilience statistics.
func (s *Session) Counters() SessionCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Held returns a copy of the session's acknowledged, unreleased grants
// (name -> client).
func (s *Session) Held() map[int]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]uint64, len(s.held))
	for n, c := range s.held {
		out[n] = c
	}
	return out
}

// Acquire requests a name for client; cb observes the grant or the
// failure. The op rides through reconnects until it completes or its
// OpTimeout expires.
func (s *Session) Acquire(client uint64, cb func(Grant, error)) error {
	return s.start(&sessOp{kind: sessAcquire, client: client, gcb: cb})
}

// Release returns a granted name; cb observes completion.
func (s *Session) Release(name int, cb func(error)) error {
	return s.start(&sessOp{kind: sessRelease, name: name, ecb: cb})
}

// Stats requests service statistics; cb observes the reply.
func (s *Session) Stats(cb func(Stats, error)) error {
	return s.start(&sessOp{kind: sessStats, scb: cb})
}

// AcquireSync is Acquire + Flush + wait.
func (s *Session) AcquireSync(client uint64) (Grant, error) {
	type res struct {
		g   Grant
		err error
	}
	ch := make(chan res, 1)
	if err := s.Acquire(client, func(g Grant, err error) { ch <- res{g, err} }); err != nil {
		return Grant{}, err
	}
	s.Flush()
	r := <-ch
	return r.g, r.err
}

// ReleaseSync is Release + Flush + wait.
func (s *Session) ReleaseSync(name int) error {
	ch := make(chan error, 1)
	if err := s.Release(name, func(err error) { ch <- err }); err != nil {
		return err
	}
	s.Flush()
	return <-ch
}

// StatsSync is Stats + Flush + wait.
func (s *Session) StatsSync() (Stats, error) {
	type res struct {
		st  Stats
		err error
	}
	ch := make(chan res, 1)
	if err := s.Stats(func(st Stats, err error) { ch <- res{st, err} }); err != nil {
		return Stats{}, err
	}
	s.Flush()
	r := <-ch
	return r.st, r.err
}

// Flush pushes buffered frames on the current connection, if any.
func (s *Session) Flush() error {
	s.mu.Lock()
	c := s.c
	s.mu.Unlock()
	if c == nil {
		return nil
	}
	return c.Flush()
}

// Close tears the session down: queued ops fail with ErrSessionClosed,
// in-flight ops fail as their connection dies, and no reconnect follows.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	c := s.c
	s.c = nil
	pend := s.queue
	s.queue = nil
	s.mu.Unlock()
	close(s.done)
	if c != nil {
		c.Close()
	}
	for _, op := range pend {
		s.failOp(op, ErrSessionClosed)
	}
	return nil
}

// Wait blocks until every session goroutine has exited and no further
// callbacks will be invoked. Call after Close.
func (s *Session) Wait() {
	<-s.done
	s.wg.Wait()
	s.mu.Lock()
	c := s.c
	s.mu.Unlock()
	if c != nil {
		c.Wait()
	}
}

// start queues or submits one op.
func (s *Session) start(op *sessOp) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	op.deadline = time.Now().Add(s.cfg.OpTimeout)
	if s.c == nil {
		s.queue = append(s.queue, op)
		s.mu.Unlock()
		return nil
	}
	s.submitLocked(s.c, op)
	s.mu.Unlock()
	return nil
}

// submitLocked registers op in flight and hands it to c. s.mu held.
func (s *Session) submitLocked(c *Client, op *sessOp) {
	op.attempts++
	s.inflight[op] = struct{}{}
	var err error
	switch op.kind {
	case sessAcquire:
		err = c.Acquire(op.client, func(g Grant, e error) { s.completeGrant(op, g, e) })
	case sessRelease:
		err = c.Release(op.name, func(e error) { s.completeErr(op, e) })
	case sessStats:
		err = c.Stats(func(st Stats, e error) { s.completeStats(op, st, e) })
	}
	if err != nil {
		// The connection died under us: park the op for the next one.
		delete(s.inflight, op)
		s.queue = append(s.queue, op)
		s.kickReconnectLocked("")
	}
}

func (s *Session) completeGrant(op *sessOp, g Grant, err error) {
	s.mu.Lock()
	delete(s.inflight, op)
	if err == nil {
		s.held[g.Name] = op.client
		s.mu.Unlock()
		op.gcb(g, nil)
		return
	}
	s.failOrRetryLocked(op, err)
}

func (s *Session) completeErr(op *sessOp, err error) {
	s.mu.Lock()
	delete(s.inflight, op)
	if err == nil {
		if op.kind == sessRelease {
			delete(s.held, op.name)
		}
		s.mu.Unlock()
		op.ecb(nil)
		return
	}
	s.failOrRetryLocked(op, err)
}

func (s *Session) completeStats(op *sessOp, st Stats, err error) {
	s.mu.Lock()
	delete(s.inflight, op)
	if err == nil {
		s.mu.Unlock()
		op.scb(st, nil)
		return
	}
	s.failOrRetryLocked(op, err)
}

// failOrRetryLocked decides an op's fate on error: requeue + reconnect
// for connection-level failures and leader redirects, user-visible
// failure for everything else. Called with s.mu held; unlocks it.
func (s *Session) failOrRetryLocked(op *sessOp, err error) {
	if op.timedOut {
		s.counters.Timeouts++
		// The janitor condemned the connection over this op; start the
		// replacement now rather than waiting for the next op to fail.
		s.kickReconnectLocked("")
		s.mu.Unlock()
		s.failOp(op, ErrOpTimeout)
		return
	}
	if s.closed {
		s.mu.Unlock()
		s.failOp(op, err)
		return
	}
	var rej *RejectError
	switch {
	case errors.As(err, &rej) && rej.Code == RejectNotLeader:
		s.counters.Redirects++
		s.queue = append(s.queue, op)
		s.kickReconnectLocked(rej.Msg)
		s.mu.Unlock()
	case errors.As(err, &rej) && rej.Code == RejectNotHeld &&
		op.kind == sessRelease && op.attempts > 1:
		// A retried release answered NotHeld: either the first attempt
		// landed and the ack was lost, or the server revoked the grant
		// while we were away. Both end with the name not held here —
		// the release's goal — so this is success.
		delete(s.held, op.name)
		s.mu.Unlock()
		op.ecb(nil)
	case errors.Is(err, ErrClientClosed):
		s.counters.Retries++
		s.queue = append(s.queue, op)
		s.kickReconnectLocked("")
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.failOp(op, err)
	}
}

// failOp invokes op's callback with err.
func (s *Session) failOp(op *sessOp, err error) {
	switch op.kind {
	case sessAcquire:
		op.gcb(Grant{}, err)
	case sessRelease:
		op.ecb(err)
	case sessStats:
		op.scb(Stats{}, err)
	}
}

// kickReconnectLocked condemns the current connection (if any) and
// ensures exactly one reconnect loop is running. s.mu held.
func (s *Session) kickReconnectLocked(hint string) {
	if hint != "" {
		s.hint = hint
	}
	if s.closed {
		return
	}
	old := s.c
	s.c = nil
	if s.reconnecting {
		if old != nil {
			old.Close()
		}
		return
	}
	s.reconnecting = true
	s.wg.Add(1)
	go s.reconnect(old)
}

// reconnect drains the dead connection, then dials until a leader
// accepts, re-attaches every acknowledged grant via reclaim, and only
// then resubmits queued ops. Runs until success or session close.
func (s *Session) reconnect(old *Client) {
	defer s.wg.Done()
	if old != nil {
		old.Close()
		// Wait flushes the old connection's callbacks: every in-flight op
		// has been requeued (or failed) before the reclaim pass runs, so
		// a retried release cannot overtake its own reclaim.
		old.Wait()
	}
	backoff := s.cfg.BackoffBase
	for attempt := 1; ; attempt++ {
		s.mu.Lock()
		if s.closed {
			pend := s.queue
			s.queue = nil
			s.reconnecting = false
			s.mu.Unlock()
			for _, op := range pend {
				s.failOp(op, ErrSessionClosed)
			}
			return
		}
		s.mu.Unlock()
		c, addr := s.tryConnect()
		if c != nil {
			s.install(c, addr, attempt)
			return
		}
		wait := s.jitterBackoff(backoff)
		if backoff *= 2; backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-s.done:
			t.Stop()
		}
	}
}

// tryConnect walks the candidate addresses once (freshest hint first),
// looking for a node that serves writes and accepts the session's
// reclaim pass. It returns nil when no candidate worked this round.
func (s *Session) tryConnect() (*Client, string) {
	s.mu.Lock()
	hint := s.hint
	s.mu.Unlock()
	cand := make([]string, 0, len(s.cfg.Addrs)+1)
	if hint != "" {
		cand = append(cand, hint)
	}
	for _, a := range s.cfg.Addrs {
		if a != hint {
			cand = append(cand, a)
		}
	}
	for _, addr := range cand {
		c, err := Dial(addr, s.cfg.Client)
		if err != nil {
			continue
		}
		if c.Role() == RoleFollower {
			if h := c.LeaderHint(); h != "" {
				s.mu.Lock()
				s.hint = h
				s.mu.Unlock()
			}
			c.Close()
			c.Wait()
			continue
		}
		if !s.reattach(c) {
			c.Close()
			c.Wait()
			continue
		}
		return c, addr
	}
	return nil, ""
}

// reattach runs the reclaim pass on a fresh connection: every
// acknowledged grant is re-bound to it, exactly once, before any queued
// op is resubmitted. Grants the server revoked while the session was
// away are dropped and reported via OnGrantLost. False means the
// connection is unusable (died mid-pass, or turned out not to lead).
func (s *Session) reattach(c *Client) bool {
	s.mu.Lock()
	type heldGrant struct {
		name   int
		client uint64
	}
	grants := make([]heldGrant, 0, len(s.held))
	for n, cl := range s.held {
		grants = append(grants, heldGrant{n, cl})
	}
	s.mu.Unlock()
	sort.Slice(grants, func(i, j int) bool { return grants[i].name < grants[j].name })
	for _, g := range grants {
		err := c.ReclaimSync(g.client, g.name)
		if err == nil {
			s.mu.Lock()
			s.counters.Reclaimed++
			s.mu.Unlock()
			continue
		}
		var rej *RejectError
		if errors.As(err, &rej) {
			switch rej.Code {
			case RejectNotHeld:
				// Revoked by connection-death absorption while we were
				// away; surface it so duplicate accounting stays exact.
				s.mu.Lock()
				delete(s.held, g.name)
				s.counters.Lost++
				s.mu.Unlock()
				s.cfg.Logf("session: grant %d (client %d) lost across reconnect: %v",
					g.name, g.client, err)
				if s.cfg.OnGrantLost != nil {
					s.cfg.OnGrantLost(g.client, g.name)
				}
				continue
			case RejectNotLeader:
				s.mu.Lock()
				if rej.Msg != "" {
					s.hint = rej.Msg
				}
				s.mu.Unlock()
				return false
			}
		}
		return false
	}
	return true
}

// install publishes a connection that passed the reclaim pass and
// resubmits every queued op on it.
func (s *Session) install(c *Client, addr string, attempt int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		c.Wait()
		return
	}
	first := s.shards == 0
	s.c = c
	s.shards, s.shardCap = c.Shards(), c.ShardCap()
	s.hint = addr // the node we are on serves writes; remember it
	s.reconnecting = false
	if !first {
		s.counters.Reconnects++
	}
	pend := s.queue
	s.queue = nil
	for _, op := range pend {
		s.submitLocked(c, op)
	}
	s.mu.Unlock()
	c.Flush()
	s.cfg.Logf("session: connected to %s (attempt %d, %d ops resubmitted)", addr, attempt, len(pend))
	if s.cfg.OnReconnect != nil {
		s.cfg.OnReconnect(addr, attempt)
	}
}

// jitterBackoff returns backoff plus up to one backoff of deterministic
// jitter, decorrelating reconnect stampedes across sessions.
func (s *Session) jitterBackoff(backoff time.Duration) time.Duration {
	s.mu.Lock()
	j := time.Duration(s.jitter.Uint64n(uint64(backoff)))
	s.mu.Unlock()
	return backoff + j
}

// janitor enforces per-op deadlines: an expired queued op fails
// directly; an expired in-flight op condemns its connection (closing it
// fails every pending op, requeueing the healthy ones), which is what
// surfaces asymmetric partitions where requests flow but replies never
// come back.
func (s *Session) janitor() {
	defer s.wg.Done()
	tick := s.cfg.OpTimeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		now := time.Now()
		var expired []*sessOp
		var condemned *Client
		s.mu.Lock()
		for op := range s.inflight {
			if now.After(op.deadline) {
				op.timedOut = true
				condemned = s.c
			}
		}
		keep := s.queue[:0]
		for _, op := range s.queue {
			if now.After(op.deadline) {
				s.counters.Timeouts++
				expired = append(expired, op)
			} else {
				keep = append(keep, op)
			}
		}
		s.queue = keep
		s.mu.Unlock()
		for _, op := range expired {
			s.failOp(op, ErrOpTimeout)
		}
		if condemned != nil {
			// Closing fails every pending op on the read goroutine: the
			// timed-out ones surface ErrOpTimeout, the rest requeue and
			// trigger the reconnect.
			s.cfg.Logf("session: op deadline exceeded, condemning connection")
			condemned.Close()
		}
	}
}
