package namesvc

import (
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
)

// benchChurn drives the service's steady-state loop — queue a batch of
// acquires, close the epoch, release every grant — the regime where a
// long-lived allocator spends its life. One benchmark op is one full
// acquire→grant→release cycle of a single name.
func benchChurn(b *testing.B, shards, shardCap, batch int) {
	svc, err := New(Config{Shards: shards, ShardCap: shardCap, Seed: 1, MaxBatch: batch})
	if err != nil {
		b.Fatal(err)
	}
	// Client IDs all routed to shard 0 keep the loop single-shard and the
	// batch size exact.
	clients := make([]uint64, batch)
	next := uint64(1)
	for i := range clients {
		for svc.Shard(next) != 0 {
			next++
		}
		clients[i] = next
		next++
	}
	cycle := func() {
		for _, cl := range clients {
			if _, err := svc.Acquire(cl, nil); err != nil {
				b.Fatal(err)
			}
		}
		grants, err := svc.CloseEpoch(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(grants) != batch {
			b.Fatalf("granted %d of %d", len(grants), batch)
		}
		for _, g := range grants {
			if err := svc.Release(g.Client, g.Name); err != nil {
				b.Fatal(err)
			}
		}
	}
	cycle() // warm scratch and caches
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		cycle()
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "ops/s")
	}
}

// BenchmarkServiceChurn is the acquire/release steady state over a 64k-name
// shard: the free pool stays nearly full, the worst case for any free-list
// representation whose per-op cost scales with the pool.
func BenchmarkServiceChurn(b *testing.B) {
	for _, batch := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("cap=65536/batch=%d", batch), func(b *testing.B) {
			benchChurn(b, 1, 1<<16, batch)
		})
	}
}

// BenchmarkLedgerChurn isolates the free-list data structure: one op is an
// assign of the smallest free name plus its release, against an almost-full
// 64k free pool.
func BenchmarkLedgerChurn(b *testing.B) {
	l := newLedger(1<<16, false, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := l.peekFree(1)[0]
		l.assign(1, uint64(i+1), 7, name)
		if err := l.release(1, 7, name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerScatteredRelease releases and re-assigns names scattered
// across the namespace — the memmove-hostile access pattern for a sorted
// slice, the bitmap's O(1) case.
func BenchmarkLedgerScatteredRelease(b *testing.B) {
	const capacity = 1 << 16
	const stride = 127 // co-prime with capacity: visits every name
	l := newLedger(capacity, false, 0)
	b.ReportAllocs()
	b.ResetTimer()
	name := 1
	for i := 0; i < b.N; i++ {
		l.assign(1, uint64(i+1), 7, name)
		if err := l.release(1, 7, name); err != nil {
			b.Fatal(err)
		}
		name = (name-1+stride)%capacity + 1
	}
}

// BenchmarkServerPipeline measures the full wire round trip: a pipelining
// client keeps a window of acquires in flight over loopback TCP; every
// grant is released immediately. One op is one acquire→grant→release over
// the socket. The callbacks are created once and reused, so the allocation
// report measures the client/server data plane, not the harness; the
// benchmark fails if the whole round trip — client fast path, server burst
// ingestion, epoch, coalesced delivery — averages a heap allocation per op
// (the strict client-side zero is pinned by
// TestClientSteadyStateZeroAllocs).
func BenchmarkServerPipeline(b *testing.B) {
	svc, err := New(Config{Shards: 1, ShardCap: 1 << 14, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Service: svc})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ln.Close()
		srv.Close()
		if err := <-done; err != nil {
			b.Errorf("serve: %v", err)
		}
	}()
	c, err := Dial(ln.Addr().String(), ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const window = 256
	sem := make(chan struct{}, window)
	var client atomic.Uint64
	releaseCB := func(err error) {
		if err != nil {
			b.Errorf("release: %v", err)
		}
		<-sem
	}
	acquireCB := func(g Grant, err error) {
		if err != nil {
			b.Errorf("acquire: %v", err)
			<-sem
			return
		}
		c.Release(g.Name, releaseCB)
	}
	// Warm the window and the per-size epoch caches before measuring.
	for i := 0; i < window; i++ {
		sem <- struct{}{}
		if err := c.Acquire(client.Add(1), acquireCB); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		if err := c.Acquire(client.Add(1), acquireCB); err != nil {
			b.Fatal(err)
		}
		// Yield after each buffered acquire: on a single-P runtime a tight
		// issuing loop starves the read goroutine and the in-process server
		// of the CPU they need to drain the pipeline it fills; the yield is
		// what any saturating driver does (blload's workers do the same).
		runtime.Gosched()
	}
	// Drain the window so every op completed inside the timed region.
	for i := 0; i < window; i++ {
		sem <- struct{}{}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	// Only meaningful once fixed warmup costs amortize away; calibration
	// runs (and the CI -benchtime 1x smoke) are too short to judge.
	if perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N); b.N >= 1<<16 && perOp >= 1 && !raceEnabled {
		b.Errorf("pipelined round trip averaged %.2f allocs/op, want amortized < 1", perOp)
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "ops/s")
	}
}
