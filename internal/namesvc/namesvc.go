// Package namesvc is the long-lived name-allocation service layer: it turns
// the repository's one-shot renaming machinery into a system that serves
// continuous acquire/release traffic.
//
// One-shot renaming (the paper's problem) assigns each of n processes a
// unique name in 1..n once. A long-lived service instead sees clients arrive
// over time, hold a name for a while, and release it for reuse — the regime
// of the long-lived/adaptive renaming literature. namesvc bridges the two by
// *epoch batching*:
//
//   - Arriving acquire requests queue per shard.
//   - Closing an epoch snapshots the batch, runs one renaming instance over
//     it (the fast in-process core.Cohort, or the public Protocol over
//     internal/transport for distributed mode), and maps the decided ranks
//     onto the k smallest free names of the shard's namespace.
//   - Releases return names to the free pool immediately; a released name
//     can be re-granted by any later epoch, and never before.
//
// The namespace is partitioned into Shards independent ledgers of ShardCap
// names each, with a deterministic client → shard router, so epochs on
// different shards run concurrently and throughput scales with shards.
// Ingestion is batched to match: AcquireBatch and ReleaseBatch submit a
// whole bucket of decoded operations to one shard under a single lock
// acquisition, and per-shard request-ID sequences make batched submission
// byte-identical — grants, digests, journals — to one-at-a-time submission
// of the same per-shard order (TestBatchedSubmissionMatchesPerOp).
//
// Every grant and release is folded into a per-shard rolling digest (and an
// optional full journal), making executions auditable and replayable: a
// fixed (seed, arrival trace, shards) reproduces an identical assignment
// ledger on any instance, which the determinism tests pin.
//
// The Service is the deterministic core; Server/Client (server.go,
// client.go) put it on real sockets behind cmd/blnamed, and cmd/blload
// drives it with load.
package namesvc

import (
	"fmt"
	"runtime"
	"sync"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/rng"
)

// shardSalt decorrelates the shard router from every other use of the seed.
const shardSalt = 0x5a4d5e5fca11ab1e

// Config parameterizes a Service.
type Config struct {
	// Shards is the number of independent namespaces; zero means 1.
	Shards int
	// ShardCap is the number of names per shard; required. The service's
	// namespace is 1..Shards*ShardCap.
	ShardCap int
	// Seed drives every epoch's renaming randomness. Executions are pure
	// functions of (Seed, arrival trace, Shards, ShardCap, Runner).
	Seed uint64
	// Runner executes one renaming instance per epoch; nil means
	// CohortRunner{} (in-process fast path).
	Runner Runner
	// MaxBatch caps the number of requests assigned per epoch; zero means
	// ShardCap. Batches are additionally capped by the shard's free names.
	MaxBatch int
	// Journal records the per-shard assignment journal (tests, audit).
	// The rolling digest is always maintained regardless.
	Journal bool
	// JournalLimit, when positive, caps the retained journal at the most
	// recent JournalLimit entries per shard, so long-lived journaling
	// daemons hold bounded memory. The trade-off: the rolling digest still
	// covers the complete history (divergence detection stays exact), but
	// entries older than the window cannot be replayed or audited — a
	// capped journal answers "what happened recently", not "everything
	// that ever happened". Zero retains every entry, which grows without
	// bound and is meant for bounded runs only — with Durable set it is
	// auto-capped at AutoJournalLimit (the WAL is the full audit trail).
	JournalLimit int
	// Durable, when non-nil, persists every shard through a write-ahead
	// log and snapshot chain; Open recovers the prior state from the
	// configured sinks before serving. See Durability.
	Durable *Durability
}

// normalized returns the config with defaults applied.
func (c Config) normalized() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxBatch <= 0 || c.MaxBatch > c.ShardCap {
		c.MaxBatch = c.ShardCap
	}
	if c.Runner == nil {
		c.Runner = CohortRunner{}
	}
	return c
}

// validate reports configuration errors.
func (c Config) validate() error {
	if c.ShardCap < 1 {
		return fmt.Errorf("namesvc: ShardCap must be >= 1, got %d", c.ShardCap)
	}
	if c.Shards < 0 {
		return fmt.Errorf("namesvc: Shards must be >= 0, got %d", c.Shards)
	}
	shards := c.Shards
	if shards == 0 {
		shards = 1
	}
	if uint64(shards)*uint64(c.ShardCap) > 1<<31 {
		return fmt.Errorf("namesvc: namespace %d x %d exceeds 2^31 names", shards, c.ShardCap)
	}
	return nil
}

// Grant is one completed acquire: the request was assigned Name (global, in
// 1..Shards*ShardCap) during the shard's given epoch.
type Grant struct {
	ReqID  uint64
	Client uint64
	Shard  int
	Epoch  uint64
	Name   int
}

// GrantNotifier receives grants for its acquire requests. GrantNotify is
// invoked with the grant during CloseEpoch — under the shard lock, so it
// must be fast, must not block, and must not call back into the Service.
// Its return value reports whether the recipient still exists: returning
// false makes the service absorb the grant as a crash, releasing the name
// immediately (journaled as an assign + release in the same epoch).
//
// An interface rather than a func so batch submitters (Server connections)
// can pass pooled per-request state without allocating a closure per op.
type GrantNotifier interface {
	GrantNotify(Grant) bool
}

// notifyFunc adapts a plain notify func to GrantNotifier. Func values are
// pointer-shaped, so the interface conversion does not allocate.
type notifyFunc func(Grant) bool

// GrantNotify implements GrantNotifier.
func (f notifyFunc) GrantNotify(g Grant) bool { return f(g) }

// enqueueAware is the optional GrantNotifier extension for batch submitters
// that need each request's ID: Enqueued is invoked under the shard lock as
// the request joins the queue, before any epoch can grant it — so the owner
// can record the ID without racing the grant (or the recycling of its own
// per-request state after it).
type enqueueAware interface {
	Enqueued(id uint64)
}

// request is one queued acquire.
type request struct {
	id        uint64
	client    uint64
	sink      GrantNotifier
	cancelled bool
}

// shard is one independent namespace with its pending queue. mu serializes
// everything, including the epoch's renaming run, so an epoch observes (and
// commits) a consistent free list.
//
// Everything below the seed is reusable steady-state scratch: the per-shard
// runner instance (forked so shards never share mutable runner state), the
// epoch's label/rank/grant buffers, the permutation-check bitmap, and a
// free list of request structs recycled from grant to acquire. Together
// with the ledger's bitmap free pool they make a failure-free CloseEpoch
// allocation-free (TestEpochZeroAllocs).
type shard struct {
	mu      sync.Mutex
	led     *ledger
	pending []*request
	index   map[uint64]*request // reqID -> queued request
	queued  int                 // uncancelled entries in pending
	nextID  uint64              // per-shard request ID counter
	seed    uint64              // per-shard seed root for epoch derivation
	runner  Runner              // this shard's private epoch engine

	labels   []proto.ID // epoch scratch: batch labels
	ranks    []int      // epoch scratch: runner output
	grants   []Grant    // epoch scratch: accepted grants, reused per epoch
	permSeen []bool     // epoch scratch: checkPermutation bitmap
	freeReq  []*request // recycled request structs

	acquires uint64
	absorbed uint64

	dur *shardWAL // nil on volatile services
}

// Service is the deterministic name-allocation core: sharded ledgers, FIFO
// pending queues, and the epoch loop. It is safe for concurrent use; each
// shard is an independent lock domain.
type Service struct {
	cfg    Config
	shards []*shard

	// Durability plumbing; zero-valued on volatile services.
	syncStop  chan struct{}
	syncDone  chan struct{}
	closeOnce sync.Once
	closeErr  error

	// group coordinates FsyncGroup sync rounds; nil in other modes.
	group *groupSyncer
	// onRecord, when non-nil, observes every sealed WAL record as it is
	// produced (under the shard lock) — the replication tap. Set once via
	// SetRecordHook before any traffic.
	onRecord func(shard int, payload []byte)
}

// SetRecordHook installs the sealed-record observer (see Service.onRecord).
// The hook runs under the shard lock with a payload that aliases encode
// scratch: it must copy what it keeps, must not block, and must not call
// back into the Service. Install it before the service takes traffic.
func (s *Service) SetRecordHook(hook func(shard int, payload []byte)) {
	s.onRecord = hook
}

// New builds a Service. With Config.Durable set it recovers the persisted
// state first (see Open, which it aliases).
func New(cfg Config) (*Service, error) { return Open(cfg) }

// Open builds a Service, recovering each shard from its durability sink
// when Config.Durable is set: newest valid snapshot, WAL tail replay with
// the sealed digests re-proven, torn tails truncated. A volatile config
// (nil Durable) makes Open identical to a plain constructor. Durable
// services must be Closed to flush the final checkpoint.
func Open(cfg Config) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	var dcfg *Durability
	if cfg.Durable != nil {
		var err error
		dcfg, err = cfg.Durable.normalized(cfg.Shards)
		if err != nil {
			return nil, err
		}
		if cfg.Journal && cfg.JournalLimit <= 0 {
			// An unbounded in-memory journal under a durable service is pure
			// memory growth (the WAL already holds the complete history);
			// cap it rather than let a long-lived daemon OOM.
			cfg.JournalLimit = AutoJournalLimit
		}
	}
	s := &Service{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = &shard{
			led:    newLedger(cfg.ShardCap, cfg.Journal, cfg.JournalLimit),
			index:  make(map[uint64]*request),
			seed:   rng.DeriveSeed(cfg.Seed, shardSalt+uint64(i)),
			runner: forkRunner(cfg.Runner),
		}
		if dcfg != nil {
			if err := s.recoverShard(i, s.shards[i], dcfg); err != nil {
				for j := 0; j <= i; j++ {
					if d := s.shards[j].dur; d != nil {
						d.store.Close()
					}
				}
				return nil, err
			}
		}
	}
	if dcfg != nil && dcfg.Fsync == FsyncInterval {
		s.syncStop = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.walSyncLoop(dcfg.FsyncEvery)
	}
	if dcfg != nil && dcfg.Fsync == FsyncGroup {
		s.group = &groupSyncer{}
		s.group.cond.L = &s.group.mu
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *Service) Shards() int { return len(s.shards) }

// ShardCap returns the number of names per shard.
func (s *Service) ShardCap() int { return s.cfg.ShardCap }

// Capacity returns the total namespace size Shards*ShardCap.
func (s *Service) Capacity() int { return len(s.shards) * s.cfg.ShardCap }

// Shard is the deterministic shard router: the shard that serves the given
// client's acquires. It hashes the client ID, so any fixed client population
// spreads across shards regardless of how the IDs were chosen.
func (s *Service) Shard(client uint64) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int(rng.DeriveSeed(shardSalt, client) % uint64(len(s.shards)))
}

// ShardOfName returns the shard that owns a global name.
func (s *Service) ShardOfName(name int) (int, error) {
	if name < 1 || name > s.Capacity() {
		return 0, fmt.Errorf("namesvc: name %d outside 1..%d", name, s.Capacity())
	}
	return (name - 1) / s.cfg.ShardCap, nil
}

// globalName maps a shard-local name to the service-wide namespace.
func (s *Service) globalName(shardIdx, local int) int {
	return shardIdx*s.cfg.ShardCap + local
}

// enqueueLocked queues one acquire on the shard, assigning the next
// per-shard request ID; sh.mu must be held. Request IDs are per-shard (not
// global), so a shard's ID sequence — and therefore its ledger digest — is
// a pure function of the shard's own arrival order, no matter how arrivals
// to other shards interleave or whether they were submitted one at a time
// or in batches (TestBatchedSubmissionMatchesPerOp pins this).
func (sh *shard) enqueueLocked(client uint64, sink GrantNotifier) uint64 {
	sh.nextID++
	id := sh.nextID
	var req *request
	if n := len(sh.freeReq); n > 0 {
		req = sh.freeReq[n-1]
		sh.freeReq = sh.freeReq[:n-1]
		*req = request{id: id, client: client, sink: sink}
	} else {
		req = &request{id: id, client: client, sink: sink}
	}
	sh.pending = append(sh.pending, req)
	sh.index[id] = req
	sh.queued++
	sh.acquires++
	if ea, ok := sink.(enqueueAware); ok {
		ea.Enqueued(id)
	}
	return id
}

// Acquire enqueues one acquire request for the client's shard and returns
// its request ID (the renaming label it will carry into its epoch). The
// request completes when a later CloseEpoch on that shard assigns it a name.
//
// notify, when non-nil, follows the GrantNotifier contract: invoked with
// the grant during CloseEpoch under the shard lock; returning false makes
// the service absorb the grant as a crash. A nil notify accepts every
// grant; callers then collect grants from CloseEpoch's return value.
func (s *Service) Acquire(client uint64, notify func(Grant) bool) (uint64, error) {
	if client == 0 {
		return 0, fmt.Errorf("namesvc: client ID must be non-zero")
	}
	var sink GrantNotifier
	if notify != nil {
		sink = notifyFunc(notify)
	}
	sh := s.shards[s.Shard(client)]
	sh.mu.Lock()
	id := sh.enqueueLocked(client, sink)
	sh.mu.Unlock()
	return id, nil
}

// AcquireOp is one element of an AcquireBatch submission.
type AcquireOp struct {
	// Client is the acquiring client; must be non-zero and must route to
	// the batch's shard (Service.Shard).
	Client uint64
	// Notify receives the grant (see Acquire); nil accepts every grant.
	Notify GrantNotifier
}

// AcquireBatch enqueues a bucket of acquire requests on one shard under a
// single lock acquisition — the amortized counterpart of calling Acquire
// once per op. Callers that ingest pipelined traffic (Server connections)
// bucket decoded acquires by Service.Shard and submit each bucket whole.
//
// The request IDs are appended to ids (which may be nil) and returned, in
// op order; the per-shard ID sequence, the queue order, and therefore every
// grant and digest are identical to submitting the same ops one at a time
// in the same per-shard order. It errors — enqueueing nothing — if any op
// has a zero client or routes to a different shard.
func (s *Service) AcquireBatch(shardIdx int, ops []AcquireOp, ids []uint64) ([]uint64, error) {
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		return ids, fmt.Errorf("namesvc: shard %d outside 0..%d", shardIdx, len(s.shards)-1)
	}
	for i, op := range ops {
		if op.Client == 0 {
			return ids, fmt.Errorf("namesvc: batch op %d: client ID must be non-zero", i)
		}
		if s.Shard(op.Client) != shardIdx {
			return ids, fmt.Errorf("namesvc: batch op %d: client %d routes to shard %d, not %d",
				i, op.Client, s.Shard(op.Client), shardIdx)
		}
	}
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	for _, op := range ops {
		ids = append(ids, sh.enqueueLocked(op.Client, op.Notify))
	}
	sh.mu.Unlock()
	return ids, nil
}

// Cancel revokes a still-queued acquire request. It reports whether the
// request was revoked before being granted; false means the request is
// unknown — never issued, already granted (release the name instead),
// already cancelled, or not this client's (request IDs are per-shard
// sequences, so the ID alone does not identify the requester). A cancelled
// request never reaches a renaming batch.
func (s *Service) Cancel(client, reqID uint64) bool {
	sh := s.shards[s.Shard(client)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	req, ok := sh.index[reqID]
	if !ok || req.client != client {
		return false
	}
	req.cancelled = true
	// Drop the caller's sink now (it can pin a whole connection's state);
	// the struct itself is recycled by the next CloseEpoch's filter pass.
	req.sink = nil
	delete(sh.index, reqID)
	sh.queued--
	return true
}

// Release returns a held global name to its shard's free pool. It errors if
// the name is outside the namespace or not currently held by the client.
func (s *Service) Release(client uint64, name int) error {
	shardIdx, err := s.ShardOfName(name)
	if err != nil {
		return err
	}
	local := name - shardIdx*s.cfg.ShardCap
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err = sh.led.release(sh.led.epoch, client, local)
	if err == nil {
		s.flushWALLocked(shardIdx, sh)
	}
	return err
}

// ReleaseOp is one element of a ReleaseBatch submission.
type ReleaseOp struct {
	// Client is the holder releasing the name.
	Client uint64
	// Name is the held global name; must belong to the batch's shard
	// (Service.ShardOfName).
	Name int
}

// ReleaseBatch returns a bucket of held names to one shard's free pool
// under a single lock acquisition — the amortized counterpart of calling
// Release once per op. Each op's outcome is appended to errs (which may be
// nil) and returned, nil for success, in op order; an op that fails (name
// outside the shard, not held, held by someone else) does not affect the
// others. The ledger events are identical to releasing the same names one
// at a time in the same per-shard order. The batch-level error reports only
// an out-of-range shard index.
func (s *Service) ReleaseBatch(shardIdx int, ops []ReleaseOp, errs []error) ([]error, error) {
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		return errs, fmt.Errorf("namesvc: shard %d outside 0..%d", shardIdx, len(s.shards)-1)
	}
	sh := s.shards[shardIdx]
	lo, hi := shardIdx*s.cfg.ShardCap, (shardIdx+1)*s.cfg.ShardCap
	sh.mu.Lock()
	for _, op := range ops {
		if op.Name <= lo || op.Name > hi {
			errs = append(errs, fmt.Errorf("namesvc: name %d outside shard %d's %d..%d",
				op.Name, shardIdx, lo+1, hi))
			continue
		}
		errs = append(errs, sh.led.release(sh.led.epoch, op.Client, op.Name-lo))
	}
	s.flushWALLocked(shardIdx, sh)
	sh.mu.Unlock()
	return errs, nil
}

// Reclaim re-binds a held global name to the client the ledger records as
// its holder — the restart handshake: after a crash and recovery, grants
// survive in the ledger but no live connection holds them, so a returning
// client proves continuity by reclaiming the names it held. It errors if
// the name is outside the namespace, free, or held by a different client.
// Reclaiming mutates nothing (the ledger already agrees), so it appends no
// WAL record.
func (s *Service) Reclaim(client uint64, name int) error {
	shardIdx, err := s.ShardOfName(name)
	if err != nil {
		return err
	}
	local := name - shardIdx*s.cfg.ShardCap
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch h := sh.led.holderOf(local); {
	case h == 0:
		return fmt.Errorf("namesvc: name %d is not assigned", name)
	case h != client:
		return fmt.Errorf("namesvc: name %d is not held by client %d", name, client)
	}
	return nil
}

// Pending returns the number of queued (uncancelled) requests on a shard.
func (s *Service) Pending(shardIdx int) int {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.queued
}

// EpochRunnable reports whether CloseEpoch on the shard could currently
// assign anything: queued requests exist and free names remain. Epoch-loop
// drivers use it to distinguish "nothing to do" from "an epoch ran but
// every grant was absorbed" (the latter must keep draining).
func (s *Service) EpochRunnable(shardIdx int) bool {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.led.freeCount() > 0 && sh.queued > 0
}

// BatchFull reports whether waiting longer cannot grow the shard's next
// epoch batch: the queue already meets the MaxBatch cap, or it covers
// every remaining free name. Epoch-loop drivers with a batching window
// (Server.shardLoop) use it to close adaptively — as soon as the batch is
// as large as an epoch can assign — instead of always waiting the window
// out.
func (s *Service) BatchFull(shardIdx int) bool {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	free := sh.led.freeCount()
	return sh.queued > 0 && free > 0 && (sh.queued >= s.cfg.MaxBatch || sh.queued >= free)
}

// CloseEpoch runs one renaming epoch on the given shard: it batches up to
// MaxBatch queued requests (bounded by the free names), runs the shard's
// Runner over the batch with a seed derived from (Seed, shard, epoch), and
// assigns each request the rank-th smallest free name. It returns the grants
// that were accepted (see Acquire's notify contract); grants whose recipient
// vanished are absorbed as crashes. With nothing to do — no queued requests,
// or no free names — it returns nil without advancing the epoch.
//
// The returned slice is the shard's reusable grant buffer: it is valid
// until the next CloseEpoch on the same shard, and callers that retain
// grants across epochs must copy them (CloseEpochs does). Server-style
// callers consume grants through notify and only look at the length.
//
// The shard lock is held for the whole epoch, including the renaming run:
// concurrent Acquire/Release on the same shard wait, which is exactly the
// group-commit batching that lets the next epoch absorb them in one run.
// A failure-free epoch performs no heap allocations: labels, ranks, the
// free-name snapshot, the permutation check, and the grants all live in
// per-shard reusable scratch, and the cohort runner resets a cached
// instance instead of building one (TestEpochZeroAllocs).
func (s *Service) CloseEpoch(shardIdx int) ([]Grant, error) {
	if shardIdx < 0 || shardIdx >= len(s.shards) {
		return nil, fmt.Errorf("namesvc: shard %d outside 0..%d", shardIdx, len(s.shards)-1)
	}
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	// Drop cancelled requests (their index entries are already gone,
	// their structs go back to the pool), then snapshot the batch: FIFO
	// prefix, bounded by the free pool.
	kept := sh.pending[:0]
	for _, r := range sh.pending {
		if r.cancelled {
			r.sink = nil
			sh.freeReq = append(sh.freeReq, r)
			continue
		}
		kept = append(kept, r)
	}
	sh.pending = kept
	limit := min(s.cfg.MaxBatch, sh.led.freeCount(), len(sh.pending))
	if limit == 0 {
		return nil, nil
	}
	batch := sh.pending[:limit]

	if cap(sh.labels) < limit {
		sh.labels = make([]proto.ID, 0, max(limit, 64))
		sh.ranks = make([]int, max(limit, 64))
		sh.permSeen = make([]bool, max(limit, 64))
	}
	labels := sh.labels[:limit]
	ranks := sh.ranks[:limit]
	for i, r := range batch {
		labels[i] = proto.ID(r.id)
	}
	epoch := sh.led.epoch + 1
	seed := rng.DeriveSeed(sh.seed, epoch)
	if err := sh.runner.Assign(seed, labels, ranks); err != nil {
		// The batch stays queued; a later epoch retries it.
		return nil, fmt.Errorf("namesvc: shard %d epoch %d: %w", shardIdx, epoch, err)
	}
	if err := checkPermutation(ranks, limit, sh.permSeen); err != nil {
		return nil, fmt.Errorf("namesvc: shard %d epoch %d: runner %s: %w", shardIdx, epoch, sh.runner.Name(), err)
	}

	// Commit: rank r takes the r-th smallest free name. The snapshot is the
	// ledger's peek scratch — plain values, stable across the assigns below
	// (the bitmap mutates, the snapshot does not alias it).
	freeSnap := sh.led.peekFree(limit)
	sh.led.epoch = epoch
	grants := sh.grants[:0]
	for i, req := range batch {
		local := freeSnap[ranks[i]-1]
		sh.led.assign(epoch, req.id, req.client, local)
		delete(sh.index, req.id)
		g := Grant{
			ReqID:  req.id,
			Client: req.client,
			Shard:  shardIdx,
			Epoch:  epoch,
			Name:   s.globalName(shardIdx, local),
		}
		accepted := req.sink == nil || req.sink.GrantNotify(g)
		req.sink = nil
		sh.freeReq = append(sh.freeReq, req)
		if !accepted {
			// The requester is gone — a crash between acquire and grant.
			// The name bounces straight back to the free pool; uniqueness
			// holds because it was never observable outside this epoch.
			sh.absorbed++
			if err := sh.led.release(epoch, req.client, local); err != nil {
				panic(fmt.Sprintf("namesvc: absorbing crashed grant: %v", err))
			}
			continue
		}
		grants = append(grants, g)
	}
	sh.grants = grants
	sh.queued -= limit
	sh.pending = append(sh.pending[:0], sh.pending[limit:]...)
	// Seal the epoch's events (assigns plus absorbed releases) into one WAL
	// record. A WAL failure degrades the shard, never the epoch: the grants
	// stand (see the failure policy in durability.go).
	s.flushWALLocked(shardIdx, sh)
	return grants, nil
}

// CloseEpochs runs CloseEpoch on every shard and concatenates the grants in
// shard order — the convenience driver for tests, examples, and embedders
// without their own per-shard epoch loops. Shards are fanned out across a
// worker pool bounded by GOMAXPROCS, so concurrent shard epochs overlap on
// multi-core; every shard runs even if another errors, and the result — the
// shard-ordered grant concatenation and the lowest-shard error, if any — is
// identical to closing each shard sequentially. The returned grants are
// copies, valid indefinitely.
func (s *Service) CloseEpochs() ([]Grant, error) {
	workers := min(len(s.shards), runtime.GOMAXPROCS(0))
	if workers <= 1 {
		var all []Grant
		var firstErr error
		for i := range s.shards {
			grants, err := s.CloseEpoch(i)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			all = append(all, grants...)
		}
		return all, firstErr
	}
	perShard := make([][]Grant, len(s.shards))
	errs := make([]error, len(s.shards))
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= len(s.shards) {
					return
				}
				grants, err := s.CloseEpoch(i)
				errs[i] = err
				// CloseEpoch returns the shard's reusable scratch; copy
				// before any later epoch on the shard can overwrite it.
				perShard[i] = append([]Grant(nil), grants...)
			}
		}()
	}
	wg.Wait()
	var all []Grant
	var firstErr error
	for i := range s.shards {
		all = append(all, perShard[i]...)
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	return all, firstErr
}

// checkPermutation verifies a runner returned each rank 1..n exactly once.
// seen is caller-provided scratch of at least n entries; it is reset before
// use, so callers need not clear it.
func checkPermutation(ranks []int, n int, seen []bool) error {
	if len(ranks) != n {
		return fmt.Errorf("assigned %d ranks for a batch of %d", len(ranks), n)
	}
	seen = seen[:n]
	for i := range seen {
		seen[i] = false
	}
	for _, r := range ranks {
		if r < 1 || r > n {
			return fmt.Errorf("rank %d outside 1..%d", r, n)
		}
		if seen[r-1] {
			return fmt.Errorf("rank %d assigned twice", r)
		}
		seen[r-1] = true
	}
	return nil
}

// Stats is a point-in-time summary across all shards.
type Stats struct {
	Shards   int
	ShardCap int
	// Epochs is the total number of completed epochs, summed over shards.
	Epochs uint64
	// Assigned and Free partition the namespace; Pending counts queued
	// requests not yet granted.
	Assigned int
	Free     int
	Pending  int
	// Acquires counts requests accepted; Grants counts names handed out
	// (including re-grants after release); Releases counts names returned;
	// Absorbed counts grants whose requester vanished mid-epoch and whose
	// names bounced straight back (Grants includes them).
	Acquires uint64
	Grants   uint64
	Releases uint64
	Absorbed uint64
	// Digests holds each shard's rolling ledger digest, indexed by shard —
	// the fingerprint a restarted instance must reproduce.
	Digests []uint64
	// WALRecords and WALSnapshots count durability artifacts written;
	// WALFailures counts failed durability operations (a non-zero value
	// means at least one shard has degraded to volatile — see the failure
	// policy in durability.go). All zero on volatile services.
	WALRecords   uint64
	WALSnapshots uint64
	WALFailures  uint64
	// Replication status, filled by the Server from its commit gate (the
	// Service itself knows nothing of replication): the node's current
	// term and role, why it last changed term or role (for example
	// "won-election", "saw-higher-term", "check-quorum-stepdown"), and
	// the highest replication-log index it has compacted away. Zero /
	// empty / RoleStandalone on unreplicated servers.
	ReplTerm       uint64
	ReplRole       Role
	ElectionReason string
	CompactFloor   uint64
}

// Stats collects the summary, locking each shard in turn.
func (s *Service) Stats() Stats {
	st := Stats{
		Shards:   len(s.shards),
		ShardCap: s.cfg.ShardCap,
		Digests:  make([]uint64, len(s.shards)),
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		st.Epochs += sh.led.epoch
		free := sh.led.freeCount()
		st.Free += free
		st.Assigned += s.cfg.ShardCap - free
		st.Pending += sh.queued
		st.Acquires += sh.acquires
		st.Grants += sh.led.assigns
		st.Releases += sh.led.releases
		st.Absorbed += sh.absorbed
		st.Digests[i] = sh.led.digest
		if d := sh.dur; d != nil {
			st.WALRecords += d.records
			st.WALSnapshots += d.snapshots
			st.WALFailures += d.failures
		}
		sh.mu.Unlock()
	}
	return st
}

// ShardJournal returns a copy of a shard's retained assignment journal
// (only populated with Config.Journal set; with Config.JournalLimit it is
// the most recent window, oldest first).
func (s *Service) ShardJournal(shardIdx int) []Entry {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]Entry(nil), sh.led.journalWindow()...)
}

// ShardEpoch returns a shard's completed-epoch count.
func (s *Service) ShardEpoch(shardIdx int) uint64 {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.led.epoch
}

// ShardDigest returns a shard's rolling ledger digest.
func (s *Service) ShardDigest(shardIdx int) uint64 {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.led.digest
}

// Digest folds every shard's ledger digest into one value: two instances
// that processed the same trace agree on it, and any divergence in any
// shard's assignment history changes it.
func (s *Service) Digest() uint64 {
	d := uint64(fnvOffset)
	for i := range s.shards {
		v := s.ShardDigest(i)
		for sft := 0; sft < 64; sft += 8 {
			d ^= (v >> sft) & 0xff
			d *= fnvPrime
		}
	}
	return d
}
