package namesvc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ballsintoleaves/internal/wire"
)

// ErrClientClosed is reported (wrapped) by client operations and pending
// callbacks once the connection is gone.
var ErrClientClosed = errors.New("namesvc: client closed")

// RejectError is a server reject mapped onto the Go error surface.
type RejectError struct {
	Code RejectCode
	Msg  string
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("namesvc: rejected (%v): %s", e.Code, e.Msg)
}

// ClientConfig parameterizes Dial.
type ClientConfig struct {
	// Timeout bounds the dial, the handshake, and every write. Zero means
	// 30 seconds. Reads are unbounded: a quiet server is a server with no
	// grants to hand out yet.
	Timeout time.Duration
	// Dial replaces the default net.DialTimeout("tcp", addr, Timeout) when
	// set. It is the seam fault-injection layers (internal/faultnet) and
	// tests use to interpose on the transport; implementations must
	// return a connected stream or an error within their own budget.
	Dial func(addr string) (net.Conn, error)
	// FlushInterval is the write-coalescing window: operations buffer their
	// frames and a background flusher pushes them at this cadence, so a
	// pipelining caller pays one syscall per window, not per operation.
	// Zero means 200µs; Flush forces the buffer out immediately.
	FlushInterval time.Duration
}

func (c *ClientConfig) normalize() {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
}

// pendingOp is one in-flight request awaiting its response frame. It is
// stored by value in the pending map, whose buckets are recycled across
// deletes — so registering and completing operations leaves no per-op
// garbage on the steady state (TestClientSteadyStateZeroAllocs).
type pendingOp struct {
	onGrant   func(Grant, error)
	onRelease func(error)
	onStats   func(Stats, error)
	onReclaim func(error)
	onEpoch   func(epoch uint64, granted int, err error)
	onJournal func(JournalPage, error)
}

// fail invokes whichever callback is set with the error.
func (p pendingOp) fail(err error) {
	switch {
	case p.onGrant != nil:
		p.onGrant(Grant{}, err)
	case p.onRelease != nil:
		p.onRelease(err)
	case p.onStats != nil:
		p.onStats(Stats{}, err)
	case p.onReclaim != nil:
		p.onReclaim(err)
	case p.onEpoch != nil:
		p.onEpoch(0, 0, err)
	case p.onJournal != nil:
		p.onJournal(JournalPage{}, err)
	}
}

// Client is a pipelining connection to a name service Server. Operations
// are asynchronous: they enqueue a frame and return; the response invokes
// the callback on the client's read goroutine, so callbacks must be fast
// and must not block on the client's own responses (issuing further
// operations from a callback is fine and is how closed-loop drivers chain).
// Sync convenience wrappers are provided for tests and simple callers.
type Client struct {
	conn     net.Conn
	cfg      ClientConfig
	shards   int
	shardCap int
	role     Role
	leader   string // leader client address from the welcome; "" if none

	wmu   sync.Mutex
	bw    *bufio.Writer
	w     wire.Writer // frame-body scratch, guarded by wmu
	fbuf  []byte      // framed-bytes scratch, guarded by wmu
	dirty bool
	werr  error

	mu      sync.Mutex
	pending map[uint64]pendingOp
	rerr    error

	nextTag  atomic.Uint64
	closed   chan struct{}
	readDone chan struct{}
	once     sync.Once
}

// Dial connects, performs the hello/welcome handshake, and starts the read
// and flush loops.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	cfg.normalize()
	var conn net.Conn
	var err error
	if cfg.Dial != nil {
		conn, err = cfg.Dial(addr)
	} else {
		conn, err = net.DialTimeout("tcp", addr, cfg.Timeout)
	}
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		cfg:      cfg,
		bw:       bufio.NewWriterSize(conn, 32<<10),
		pending:  make(map[uint64]pendingOp),
		closed:   make(chan struct{}),
		readDone: make(chan struct{}),
	}
	c.w.Reset()
	appendSvcHello(&c.w)
	conn.SetWriteDeadline(time.Now().Add(cfg.Timeout))
	if err := wire.WriteFrame(c.bw, c.w.Bytes()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("namesvc: hello: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("namesvc: hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
	body, err := wire.ReadFrame(br, nil, svcMaxFrame)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("namesvc: awaiting welcome: %w", err)
	}
	if c.shards, c.shardCap, c.role, c.leader, err = decodeWelcome(body); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Time{})
	go c.readLoop(br, body)
	go c.flushLoop()
	return c, nil
}

// Shards returns the server's shard count.
func (c *Client) Shards() int { return c.shards }

// ShardCap returns the server's per-shard namespace size.
func (c *Client) ShardCap() int { return c.shardCap }

// Capacity returns the server's total namespace size.
func (c *Client) Capacity() int { return c.shards * c.shardCap }

// Role returns the server's replication role at handshake time.
func (c *Client) Role() Role { return c.role }

// LeaderHint returns the leader client address the server advertised in
// its welcome — empty on a standalone server, on the leader itself, and
// on a follower that does not currently know a leader. Writes rejected
// after a leadership change carry the fresher hint in the RejectNotLeader
// message (see LeaderHintFromError).
func (c *Client) LeaderHint() string { return c.leader }

// LeaderHintFromError extracts the redirect hint from a RejectNotLeader
// error: ok reports whether err is one, and leader is the advertised
// leader client address (possibly empty — retry the known addresses).
func LeaderHintFromError(err error) (leader string, ok bool) {
	var rej *RejectError
	if errors.As(err, &rej) && rej.Code == RejectNotLeader {
		return rej.Msg, true
	}
	return "", false
}

// DialLeader dials until it lands on a server that serves writes: it
// tries the given addresses, follows each follower's leader hint, and
// retries through elections until cfg.Timeout (as a total budget) runs
// out. It is the client half of leader failover — blload and the cluster
// tests reconnect through it after a kill.
func DialLeader(addrs []string, cfg ClientConfig) (*Client, error) {
	cfg.normalize()
	if len(addrs) == 0 {
		return nil, fmt.Errorf("namesvc: DialLeader needs at least one address")
	}
	deadline := time.Now().Add(cfg.Timeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		// A fresh hint is always tried first, then the static list.
		try := addrs
		for _, addr := range try {
			c, err := Dial(addr, cfg)
			if err != nil {
				lastErr = err
				continue
			}
			if c.Role() != RoleFollower {
				return c, nil
			}
			hint := c.LeaderHint()
			c.Close()
			if hint != "" {
				if hc, err := Dial(hint, cfg); err == nil {
					if hc.Role() != RoleFollower {
						return hc, nil
					}
					hc.Close()
				} else {
					lastErr = err
				}
			}
			lastErr = fmt.Errorf("namesvc: %s is a follower (leader hint %q)", addr, hint)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("namesvc: no leader found in %v: %w", cfg.Timeout, lastErr)
		}
		time.Sleep(min(50*time.Millisecond*time.Duration(attempt+1), 500*time.Millisecond))
	}
}

// Close tears the connection down; every in-flight callback fails with a
// wrapped ErrClientClosed.
func (c *Client) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.conn.Close()
}

// Wait blocks until the read goroutine has exited and therefore no further
// callback will run — the synchronization point for callers that aggregate
// callback-owned state after Close.
func (c *Client) Wait() { <-c.readDone }

// Acquire requests a name for the given client ID; cb receives the grant
// (or the reject/connection error) on the read goroutine. The fast path is
// allocation-free: the frame is encoded straight into the connection's
// write buffer, with no per-op closure or callback box.
func (c *Client) Acquire(client uint64, cb func(Grant, error)) error {
	if client == 0 {
		return fmt.Errorf("namesvc: client ID must be non-zero")
	}
	return c.send(pendingOp{onGrant: cb}, opAcquire, client, 0, 0)
}

// Release returns a held name; cb receives nil on success.
func (c *Client) Release(name int, cb func(error)) error {
	return c.send(pendingOp{onRelease: cb}, opRelease, 0, uint64(name), 0)
}

// Stats requests the server's counters.
func (c *Client) Stats(cb func(Stats, error)) error {
	return c.send(pendingOp{onStats: cb}, opStats, 0, 0, 0)
}

// Reclaim re-binds a name the service's ledger already records as held by
// the given client — the restart handshake against a durable server: after
// a crash, recovered grants belong to no connection until their clients
// reclaim them. cb receives nil on success, after which the name can be
// released on this connection.
func (c *Client) Reclaim(client uint64, name int, cb func(error)) error {
	if client == 0 {
		return fmt.Errorf("namesvc: client ID must be non-zero")
	}
	return c.send(pendingOp{onReclaim: cb}, opReclaim, client, uint64(name), 0)
}

// Epoch asks a manual-epoch server (ServerConfig.ManualEpochs) to close
// exactly one epoch on the given shard. The reply carries the shard's epoch
// counter after the close and the number of grants it accepted; because the
// server appends the epoch's grant frames before the reply, every grant of
// the epoch destined for this connection has already been dispatched when
// cb runs. Ordinary servers reject the op with RejectUnsupported.
func (c *Client) Epoch(shard int, cb func(epoch uint64, granted int, err error)) error {
	if shard < 0 {
		return fmt.Errorf("namesvc: shard must be >= 0, got %d", shard)
	}
	return c.send(pendingOp{onEpoch: cb}, opEpoch, uint64(shard), 0, 0)
}

// Journal fetches one page of a journaling server's retained journal window
// for a shard: up to maxEntries entries starting at position start (the
// server caps a page at its frame budget, so the reply may be shorter —
// page callers advance by len(Entries) until Start+len(Entries) == Total).
// Servers without Config.Journal reject the op with RejectUnsupported.
func (c *Client) Journal(shard, start, maxEntries int, cb func(JournalPage, error)) error {
	if shard < 0 || start < 0 || maxEntries < 0 {
		return fmt.Errorf("namesvc: journal request shard %d start %d max %d", shard, start, maxEntries)
	}
	return c.send(pendingOp{onJournal: cb}, opJournal, uint64(shard), uint64(start), uint64(maxEntries))
}

// send registers the pending op, then encodes and buffers its request
// frame. The op is selected by wire tag rather than a fill closure so the
// per-op path allocates nothing; registration comes first so a response
// racing the flusher always finds its callback.
func (c *Client) send(p pendingOp, op byte, arg, arg2, arg3 uint64) error {
	tag := c.nextTag.Add(1)
	if err := c.register(tag, p); err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		c.dropPending(tag)
		return c.werr
	}
	c.w.Reset()
	switch op {
	case opAcquire:
		appendAcquire(&c.w, tag, arg)
	case opRelease:
		appendRelease(&c.w, tag, int(arg2))
	case opStats:
		appendStatsReq(&c.w, tag)
	case opReclaim:
		appendReclaim(&c.w, tag, arg, int(arg2))
	case opEpoch:
		appendEpochReq(&c.w, tag, int(arg))
	case opJournal:
		appendJournalReq(&c.w, tag, int(arg), int(arg2), int(arg3))
	}
	return c.writeLocked(tag)
}

// AcquireSync acquires and waits for the grant.
func (c *Client) AcquireSync(client uint64) (Grant, error) {
	type result struct {
		g   Grant
		err error
	}
	ch := make(chan result, 1)
	if err := c.Acquire(client, func(g Grant, err error) { ch <- result{g, err} }); err != nil {
		return Grant{}, err
	}
	if err := c.Flush(); err != nil {
		return Grant{}, err
	}
	r := <-ch
	return r.g, r.err
}

// ReleaseSync releases and waits for the acknowledgement.
func (c *Client) ReleaseSync(name int) error {
	ch := make(chan error, 1)
	if err := c.Release(name, func(err error) { ch <- err }); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	return <-ch
}

// ReclaimSync reclaims and waits for the acknowledgement.
func (c *Client) ReclaimSync(client uint64, name int) error {
	ch := make(chan error, 1)
	if err := c.Reclaim(client, name, func(err error) { ch <- err }); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	return <-ch
}

// EpochSync closes one epoch on a manual-epoch server and waits for the
// reply. When it returns, every grant the epoch handed to this connection
// has already been dispatched to its Acquire callback.
func (c *Client) EpochSync(shard int) (epoch uint64, granted int, err error) {
	type result struct {
		epoch   uint64
		granted int
		err     error
	}
	ch := make(chan result, 1)
	if err := c.Epoch(shard, func(epoch uint64, granted int, err error) {
		ch <- result{epoch, granted, err}
	}); err != nil {
		return 0, 0, err
	}
	if err := c.Flush(); err != nil {
		return 0, 0, err
	}
	r := <-ch
	return r.epoch, r.granted, r.err
}

// JournalSync fetches a shard's entire retained journal window, paging until
// the server reports no further entries.
func (c *Client) JournalSync(shard int) ([]Entry, error) {
	type result struct {
		page JournalPage
		err  error
	}
	ch := make(chan result, 1)
	var entries []Entry
	for start := 0; ; {
		if err := c.Journal(shard, start, journalPageMax, func(page JournalPage, err error) {
			ch <- result{page, err}
		}); err != nil {
			return nil, err
		}
		if err := c.Flush(); err != nil {
			return nil, err
		}
		r := <-ch
		if r.err != nil {
			return nil, r.err
		}
		entries = append(entries, r.page.Entries...)
		start += len(r.page.Entries)
		if start >= r.page.Total || len(r.page.Entries) == 0 {
			return entries, nil
		}
	}
}

// StatsSync fetches the server's counters.
func (c *Client) StatsSync() (Stats, error) {
	type result struct {
		st  Stats
		err error
	}
	ch := make(chan result, 1)
	if err := c.Stats(func(st Stats, err error) { ch <- result{st, err} }); err != nil {
		return Stats{}, err
	}
	if err := c.Flush(); err != nil {
		return Stats{}, err
	}
	r := <-ch
	return r.st, r.err
}

// register records the pending op before its frame is buffered, so a
// response racing the flusher always finds its callback.
func (c *Client) register(tag uint64, op pendingOp) error {
	c.mu.Lock()
	if c.rerr != nil {
		err := c.rerr
		c.mu.Unlock()
		return err
	}
	c.pending[tag] = op
	c.mu.Unlock()
	return nil
}

// writeLocked frames c.w's bytes into the write buffer; c.wmu must be held
// and c.werr already checked. On a write error the registration is dropped.
// The frame is staged in the client's reusable buffer rather than through
// wire.WriteFrame, whose stack header would escape into a per-op heap
// allocation; the steady-state send path touches no memory it does not own.
func (c *Client) writeLocked(tag uint64) error {
	c.fbuf = wire.AppendFrame(c.fbuf[:0], c.w.Bytes())
	if c.bw.Available() < len(c.fbuf) {
		// This write will spill to the socket; deadlines are absolute and
		// the one armed by the last flush may long since have expired on
		// an idle connection, so re-arm before the implicit flush.
		c.conn.SetWriteDeadline(time.Now().Add(c.cfg.Timeout))
	}
	if _, err := c.bw.Write(c.fbuf); err != nil {
		c.werr = err
		c.dropPending(tag)
		return err
	}
	c.dirty = true
	return nil
}

// dropPending removes a registration whose frame never made it out.
func (c *Client) dropPending(tag uint64) {
	c.mu.Lock()
	delete(c.pending, tag)
	c.mu.Unlock()
}

// Flush forces buffered frames onto the wire.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	if !c.dirty {
		return nil
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.Timeout))
	if err := c.bw.Flush(); err != nil {
		c.werr = err
		return err
	}
	c.dirty = false
	return nil
}

// flushLoop pushes buffered frames every FlushInterval until Close.
func (c *Client) flushLoop() {
	ticker := time.NewTicker(c.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-ticker.C:
			c.Flush() // a write error surfaces through the read loop too
		}
	}
}

// readLoop dispatches response frames to their callbacks; on any error it
// fails every pending operation.
//
// It is also the client's write clock: before blocking for the next
// response it flushes the write buffer. Callbacks issue follow-up
// operations (the closed-loop chaining pattern), so the moment the response
// stream runs dry — every callback of the burst has run — is exactly when
// the next generation of requests is complete and should hit the wire as
// one batch. Pipelined request/response traffic therefore self-clocks,
// with the FlushInterval ticker only backstopping sends issued outside any
// callback.
func (c *Client) readLoop(br *bufio.Reader, rbuf []byte) {
	defer close(c.readDone)
	for {
		if br.Buffered() == 0 {
			c.Flush() // a write error surfaces through the read loop too
		}
		body, err := wire.ReadFrame(br, rbuf, svcMaxFrame)
		if err != nil {
			c.failAll(fmt.Errorf("%w: %v", ErrClientClosed, err))
			return
		}
		rbuf = body
		if err := c.dispatch(body); err != nil {
			c.failAll(fmt.Errorf("%w: %v", ErrClientClosed, err))
			c.conn.Close()
			return
		}
	}
}

// dispatch decodes one response frame and invokes its callback.
func (c *Client) dispatch(body []byte) error {
	op := byte(0)
	if len(body) > 0 {
		op = body[0]
	}
	switch op {
	case opGrant:
		tag, g, err := decodeGrant(body)
		if err != nil {
			return err
		}
		if p, ok := c.takePending(tag); ok && p.onGrant != nil {
			p.onGrant(g, nil)
		}
	case opReleased:
		tag, err := decodeReleased(body)
		if err != nil {
			return err
		}
		if p, ok := c.takePending(tag); ok && p.onRelease != nil {
			p.onRelease(nil)
		}
	case opStatsRep:
		tag, st, err := decodeStatsRep(body)
		if err != nil {
			return err
		}
		if p, ok := c.takePending(tag); ok && p.onStats != nil {
			p.onStats(st, nil)
		}
	case opReclaimed:
		tag, err := decodeReclaimed(body)
		if err != nil {
			return err
		}
		if p, ok := c.takePending(tag); ok && p.onReclaim != nil {
			p.onReclaim(nil)
		}
	case opEpochRep:
		tag, epoch, granted, err := decodeEpochRep(body)
		if err != nil {
			return err
		}
		if p, ok := c.takePending(tag); ok && p.onEpoch != nil {
			p.onEpoch(epoch, granted, nil)
		}
	case opJournalRep:
		tag, page, err := decodeJournalRep(body)
		if err != nil {
			return err
		}
		if p, ok := c.takePending(tag); ok && p.onJournal != nil {
			p.onJournal(page, nil)
		}
	case opReject:
		tag, code, msg, err := decodeReject(body)
		if err != nil {
			return err
		}
		if p, ok := c.takePending(tag); ok {
			p.fail(&RejectError{Code: code, Msg: msg})
		}
	default:
		return fmt.Errorf("namesvc: unexpected op %d from server", op)
	}
	return nil
}

// takePending claims the pending op for a tag.
func (c *Client) takePending(tag uint64) (pendingOp, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pending[tag]
	if ok {
		delete(c.pending, tag)
	}
	return p, ok
}

// failAll fails every pending op and poisons the client.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.rerr == nil {
		c.rerr = err
	}
	pend := c.pending
	c.pending = make(map[uint64]pendingOp)
	c.mu.Unlock()
	for _, p := range pend {
		p.fail(err)
	}
	c.once.Do(func() { close(c.closed) })
}
