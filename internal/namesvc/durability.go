package namesvc

import (
	"fmt"
	"sync"
	"time"

	"ballsintoleaves/internal/namesvc/durable"
	"ballsintoleaves/internal/wire"
)

// Durability: the service's ledgers, digests, and request-ID counters are
// persisted through internal/namesvc/durable — one write-ahead log and
// snapshot chain per shard. Every mutation batch that touches a ledger
// (one CloseEpoch, one Release, one ReleaseBatch) seals exactly one WAL
// record: the batch's assign/release events plus the shard state they
// produce (epoch, request-ID counter, rolling digest, event counters).
// Recovery loads the newest valid snapshot, replays the WAL tail through
// the ordinary ledger operations, and proves the rebuilt shard honest by
// recomputing the rolling digest and matching it against the digest sealed
// in every record — a replay that diverges by a single event cannot
// produce the sealed FNV chain.
//
// Failure policy: the service fails OPEN. If a WAL append or checkpoint
// errors (disk full, injected crash), the shard keeps serving from memory,
// logs the degradation once, counts it in Stats.WALFailures, and stops
// touching the poisoned store — acknowledged operations after that point
// are volatile, exactly as if -data-dir had not been given. The
// alternative (fail stop) trades availability for a guarantee the
// single-node deployment cannot fully honor anyway; replication is the
// planned fix, and the seam for it is the durable.Store record stream.

// FsyncMode selects when WAL records reach stable storage.
type FsyncMode int

const (
	// FsyncPerEpoch fsyncs after every WAL record — every CloseEpoch and
	// every release batch — so an acknowledged grant is durable before any
	// client can observe it. The safest and slowest mode.
	FsyncPerEpoch FsyncMode = iota
	// FsyncInterval fsyncs on a timer (Durability.FsyncEvery): a crash
	// loses at most the last interval's acknowledged operations, recovery
	// still sees a prefix-consistent ledger.
	FsyncInterval
	// FsyncOff never fsyncs; the OS flushes on its own schedule. A process
	// kill loses nothing (the page cache survives); a machine crash loses
	// an unbounded suffix — still prefix-consistent.
	FsyncOff
	// FsyncGroup is group commit: appends do not sync, and a grant is
	// delivered only after a sync *round* (Service.SyncGroup) covering it
	// completes. One fsync pass over all shards absorbs every record the
	// round's waiters produced, so concurrent shards share fsyncs instead
	// of paying one each — per-epoch safety at a fraction of the cost.
	// Requires a delivery gate that calls SyncGroup (Server does this when
	// ServerConfig.Gate is GroupGate or a replication node).
	FsyncGroup
)

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	switch m {
	case FsyncPerEpoch:
		return "epoch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	case FsyncGroup:
		return "group"
	default:
		return fmt.Sprintf("FsyncMode(%d)", int(m))
	}
}

// AutoJournalLimit is the journal cap Open applies when durability is
// enabled and Config.JournalLimit asks for an unbounded journal: with a
// WAL on disk as the complete audit trail, an unbounded in-memory journal
// is pure memory growth, so the footgun is defused automatically.
const AutoJournalLimit = 1 << 20

// Durability configures persistence for a Service; see Config.Durable.
type Durability struct {
	// Sinks holds one storage directory per shard (durable.ShardSinks for
	// the on-disk layout, durable.MemSink for tests). Required; its length
	// must equal the (normalized) shard count.
	Sinks []durable.Sink
	// Fsync selects the durability/throughput trade; see FsyncMode.
	Fsync FsyncMode
	// FsyncEvery is the FsyncInterval cadence; zero means 100ms.
	FsyncEvery time.Duration
	// SnapshotEvery checkpoints a shard after this many WAL records,
	// bounding recovery replay and WAL disk growth. Zero means 4096.
	SnapshotEvery int
	// Logf, when non-nil, receives durability log lines (recovery summary,
	// degradation warnings).
	Logf func(format string, args ...any)
}

func (d *Durability) normalized(shards int) (*Durability, error) {
	if len(d.Sinks) != shards {
		return nil, fmt.Errorf("namesvc: %d durability sinks for %d shards", len(d.Sinks), shards)
	}
	nd := *d
	if nd.FsyncEvery <= 0 {
		nd.FsyncEvery = 100 * time.Millisecond
	}
	if nd.SnapshotEvery <= 0 {
		nd.SnapshotEvery = 4096
	}
	if nd.Logf == nil {
		nd.Logf = func(string, ...any) {}
	}
	return &nd, nil
}

// shardWAL is one shard's durability state, guarded by the shard lock.
type shardWAL struct {
	store     *durable.Store
	w         wire.Writer // record/snapshot encode scratch
	snapEvery int
	sinceSnap int
	logf      func(format string, args ...any)
	err       error // sticky: first failure degrades the shard to volatile
	records   uint64
	snapshots uint64
	failures  uint64
}

// fail records the first durability failure and logs the degradation.
func (d *shardWAL) fail(shardIdx int, err error) {
	d.failures++
	if d.err != nil {
		return
	}
	d.err = err
	d.logf("shard %d: durability failed, serving volatile from here on: %v", shardIdx, err)
}

// WAL payload format (inside durable's CRC framing). A record seals the
// shard state its events produce; a snapshot seals the whole state. The
// shard index is embedded so a sink mounted under the wrong shard is an
// error, not a silently scrambled namespace.
const (
	walRecordMagic   byte = 'R'
	walSnapshotMagic byte = 'S'
	walFormatVersion      = 1
)

// walSeal is the per-shard state sealed into every record and snapshot.
type walSeal struct {
	epoch    uint64
	nextID   uint64
	digest   uint64
	acquires uint64
	assigns  uint64
	releases uint64
	absorbed uint64
}

// sealLocked captures the shard's current sealed state; sh.mu held.
func (sh *shard) sealLocked() walSeal {
	return walSeal{
		epoch:    sh.led.epoch,
		nextID:   sh.nextID,
		digest:   sh.led.digest,
		acquires: sh.acquires,
		assigns:  sh.led.assigns,
		releases: sh.led.releases,
		absorbed: sh.absorbed,
	}
}

func appendSeal(w *wire.Writer, seal walSeal) {
	w.Uvarint(seal.epoch)
	w.Uvarint(seal.nextID)
	w.Uvarint(seal.digest)
	w.Uvarint(seal.acquires)
	w.Uvarint(seal.assigns)
	w.Uvarint(seal.releases)
	w.Uvarint(seal.absorbed)
}

func readSeal(r *wire.Reader) walSeal {
	return walSeal{
		epoch:    r.Uvarint(),
		nextID:   r.Uvarint(),
		digest:   r.Uvarint(),
		acquires: r.Uvarint(),
		assigns:  r.Uvarint(),
		releases: r.Uvarint(),
		absorbed: r.Uvarint(),
	}
}

func appendEntries(w *wire.Writer, entries []Entry) {
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.Uvarint(e.Epoch)
		w.Byte(byte(e.Op))
		w.Uvarint(e.Client)
		w.Uvarint(e.ReqID)
		w.Uvarint(uint64(e.Name))
	}
}

// readEntries decodes an entry list, bounded by what the payload could
// physically hold so a corrupt count cannot force a huge allocation.
func readEntries(r *wire.Reader) ([]Entry, error) {
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()/5+1) {
		return nil, fmt.Errorf("%w: %d entries in %d bytes", wire.ErrTruncated, n, r.Remaining())
	}
	entries := make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		e := Entry{
			Epoch:  r.Uvarint(),
			Op:     EntryOp(r.Byte()),
			Client: r.Uvarint(),
			ReqID:  r.Uvarint(),
			Name:   int(r.Uvarint()),
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// appendWALRecord encodes one record payload: header, sealed state, the
// batch's events.
func appendWALRecord(w *wire.Writer, shardIdx int, seal walSeal, entries []Entry) {
	w.Byte(walRecordMagic)
	w.Uvarint(walFormatVersion)
	w.Uvarint(uint64(shardIdx))
	appendSeal(w, seal)
	appendEntries(w, entries)
}

// decodeWALRecord decodes and validates a record payload for a shard.
func decodeWALRecord(payload []byte, shardIdx int) (walSeal, []Entry, error) {
	r := wire.NewReader(payload)
	if m := r.Byte(); r.Err() == nil && m != walRecordMagic {
		return walSeal{}, nil, fmt.Errorf("namesvc: WAL record magic %#x", m)
	}
	if v := r.Uvarint(); r.Err() == nil && v != walFormatVersion {
		return walSeal{}, nil, fmt.Errorf("namesvc: WAL record format %d, want %d", v, walFormatVersion)
	}
	if sh := r.Uvarint(); r.Err() == nil && sh != uint64(shardIdx) {
		return walSeal{}, nil, fmt.Errorf("namesvc: WAL record for shard %d mounted under shard %d", sh, shardIdx)
	}
	seal := readSeal(r)
	entries, err := readEntries(r)
	if err != nil {
		return walSeal{}, nil, err
	}
	if err := r.Close(); err != nil {
		return walSeal{}, nil, err
	}
	return seal, entries, nil
}

// appendWALSnapshot encodes one snapshot payload: header, sealed state,
// the holder array (0 = free), and the retained journal window.
func appendWALSnapshot(w *wire.Writer, shardIdx int, seal walSeal, holder []uint64, win []Entry) {
	w.Byte(walSnapshotMagic)
	w.Uvarint(walFormatVersion)
	w.Uvarint(uint64(shardIdx))
	appendSeal(w, seal)
	w.Uvarint(uint64(len(holder)))
	for _, h := range holder {
		w.Uvarint(h)
	}
	appendEntries(w, win)
}

// decodeWALSnapshot decodes and validates a snapshot payload for a shard.
func decodeWALSnapshot(payload []byte, shardIdx int) (walSeal, []uint64, []Entry, error) {
	r := wire.NewReader(payload)
	if m := r.Byte(); r.Err() == nil && m != walSnapshotMagic {
		return walSeal{}, nil, nil, fmt.Errorf("namesvc: WAL snapshot magic %#x", m)
	}
	if v := r.Uvarint(); r.Err() == nil && v != walFormatVersion {
		return walSeal{}, nil, nil, fmt.Errorf("namesvc: WAL snapshot format %d, want %d", v, walFormatVersion)
	}
	if sh := r.Uvarint(); r.Err() == nil && sh != uint64(shardIdx) {
		return walSeal{}, nil, nil, fmt.Errorf("namesvc: WAL snapshot for shard %d mounted under shard %d", sh, shardIdx)
	}
	seal := readSeal(r)
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()+1) {
		return walSeal{}, nil, nil, fmt.Errorf("%w: %d holders in %d bytes", wire.ErrTruncated, n, r.Remaining())
	}
	holder := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		holder = append(holder, r.Uvarint())
	}
	win, err := readEntries(r)
	if err != nil {
		return walSeal{}, nil, nil, err
	}
	if err := r.Close(); err != nil {
		return walSeal{}, nil, nil, err
	}
	return seal, holder, win, nil
}

// flushWALLocked drains the ledger's staged events into one WAL record
// sealing the shard's current state, checkpointing when the snapshot
// cadence is due; sh.mu must be held. With nothing staged (or durability
// off, or the shard degraded) it is a no-op.
func (s *Service) flushWALLocked(shardIdx int, sh *shard) {
	d := sh.dur
	if d == nil {
		return
	}
	entries := sh.led.takeStage()
	if len(entries) == 0 {
		return
	}
	hook := s.onRecord
	if d.err != nil && hook == nil {
		return
	}
	d.w.Reset()
	appendWALRecord(&d.w, shardIdx, sh.sealLocked(), entries)
	if d.err == nil {
		if _, err := d.store.Append(d.w.Bytes()); err != nil {
			d.fail(shardIdx, err)
		} else {
			d.records++
			d.sinceSnap++
		}
	}
	// The record hook (replication) observes every sealed record, even
	// when the local store has degraded — the cluster is the durability
	// then. The payload aliases encode scratch; the hook must copy.
	if hook != nil {
		hook(shardIdx, d.w.Bytes())
	}
	if d.err == nil && d.sinceSnap >= d.snapEvery {
		s.checkpointLocked(shardIdx, sh)
	}
}

// checkpointLocked seals a snapshot of the shard's full state and rotates
// its WAL; sh.mu must be held.
func (s *Service) checkpointLocked(shardIdx int, sh *shard) {
	d := sh.dur
	if d == nil || d.err != nil {
		return
	}
	d.w.Reset()
	appendWALSnapshot(&d.w, shardIdx, sh.sealLocked(), sh.led.holder, sh.led.journalWindow())
	if err := d.store.Checkpoint(d.w.Bytes()); err != nil {
		d.fail(shardIdx, err)
		return
	}
	d.sinceSnap = 0
	d.snapshots++
}

// recoverShard rebuilds one shard from its sink: newest valid snapshot,
// then the WAL tail replayed through the ordinary ledger operations, with
// the rolling digest recomputed and checked against the digest sealed in
// every record. On success the shard's store is open for appends and a
// fresh boot checkpoint has physically truncated any torn tail.
func (s *Service) recoverShard(shardIdx int, sh *shard, dcfg *Durability) error {
	store, rec, err := durable.Open(dcfg.Sinks[shardIdx], durable.Options{
		SyncEachAppend: dcfg.Fsync == FsyncPerEpoch,
	})
	if err != nil {
		return fmt.Errorf("namesvc: shard %d: %w", shardIdx, err)
	}
	if rec.Snapshot != nil {
		seal, holder, win, err := decodeWALSnapshot(rec.Snapshot, shardIdx)
		if err != nil {
			return fmt.Errorf("namesvc: shard %d: snapshot %d: %w", shardIdx, rec.SnapSeq, err)
		}
		if err := sh.led.restore(seal.epoch, holder, seal.digest, seal.assigns, seal.releases, win); err != nil {
			return fmt.Errorf("namesvc: shard %d: snapshot %d: %w", shardIdx, rec.SnapSeq, err)
		}
		sh.nextID = seal.nextID
		sh.acquires = seal.acquires
		sh.absorbed = seal.absorbed
	}
	for _, r := range rec.Records {
		seal, entries, err := decodeWALRecord(r.Payload, shardIdx)
		if err != nil {
			return fmt.Errorf("namesvc: shard %d: record %d: %w", shardIdx, r.Seq, err)
		}
		for _, e := range entries {
			switch e.Op {
			case OpAssign:
				if e.Name < 1 || e.Name > sh.led.cap || sh.led.holderOf(e.Name) != 0 {
					return fmt.Errorf("namesvc: shard %d: record %d assigns unassignable name %d",
						shardIdx, r.Seq, e.Name)
				}
				sh.led.assign(e.Epoch, e.ReqID, e.Client, e.Name)
			case OpRelease:
				if err := sh.led.release(e.Epoch, e.Client, e.Name); err != nil {
					return fmt.Errorf("namesvc: shard %d: record %d: %w", shardIdx, r.Seq, err)
				}
			default:
				return fmt.Errorf("namesvc: shard %d: record %d: unknown op %d", shardIdx, r.Seq, e.Op)
			}
		}
		// The seal is the proof obligation: the replayed ledger must have
		// arrived at exactly the digest and counters the live shard sealed
		// when it wrote this record.
		sh.led.epoch = seal.epoch
		sh.nextID = seal.nextID
		sh.acquires = seal.acquires
		sh.absorbed = seal.absorbed
		if sh.led.digest != seal.digest {
			return fmt.Errorf("namesvc: shard %d: record %d: replayed digest %016x != sealed %016x",
				shardIdx, r.Seq, sh.led.digest, seal.digest)
		}
		if sh.led.assigns != seal.assigns || sh.led.releases != seal.releases {
			return fmt.Errorf("namesvc: shard %d: record %d: replayed counters (%d assigns, %d releases) != sealed (%d, %d)",
				shardIdx, r.Seq, sh.led.assigns, sh.led.releases, seal.assigns, seal.releases)
		}
	}
	sh.dur = &shardWAL{
		store:     store,
		snapEvery: dcfg.SnapshotEvery,
		logf:      dcfg.Logf,
	}
	sh.led.staging = true
	if rec.Seq > 0 || rec.Torn {
		dcfg.Logf("shard %d: recovered epoch %d, %d assigned, digest %016x (snapshot %d + %d records%s)",
			shardIdx, sh.led.epoch, sh.led.cap-sh.led.freeCount(), sh.led.digest,
			rec.SnapSeq, len(rec.Records), tornNote(rec.Torn))
		// Boot checkpoint: fold the replayed tail into a fresh snapshot so
		// torn bytes are physically gone and the next recovery is O(snapshot).
		s.checkpointLocked(shardIdx, sh)
		if sh.dur.err != nil {
			return fmt.Errorf("namesvc: shard %d: boot checkpoint: %w", shardIdx, sh.dur.err)
		}
	}
	return nil
}

func tornNote(torn bool) string {
	if torn {
		return ", torn tail truncated"
	}
	return ""
}

// SyncWAL fsyncs every shard's WAL segment — the FsyncInterval tick, also
// usable by embedders with their own durability clock. It returns the
// first failure (which degrades that shard, see the failure policy above).
func (s *Service) SyncWAL() error {
	var first error
	for i, sh := range s.shards {
		sh.mu.Lock()
		if sh.dur != nil && sh.dur.err == nil {
			if err := sh.dur.store.Sync(); err != nil {
				sh.dur.fail(i, err)
				if first == nil {
					first = err
				}
			}
		}
		sh.mu.Unlock()
	}
	return first
}

// groupSyncer coordinates FsyncGroup rounds: every waiter arriving while
// a round is in flight is absorbed into the next one, so an fsync pass
// over the shards is shared by all concurrently-closing epochs.
type groupSyncer struct {
	mu      sync.Mutex
	cond    sync.Cond
	started uint64 // sync rounds started
	done    uint64 // sync rounds completed
	syncing bool
}

// SyncGroup blocks until a sync round that started after the call covers
// every WAL record appended before it. In any mode other than FsyncGroup
// it is a no-op. Sync failures degrade the affected shard (fail-open, see
// the failure policy above) and are returned for observability.
func (s *Service) SyncGroup() error {
	g := s.group
	if g == nil {
		return nil
	}
	var first error
	g.mu.Lock()
	need := g.started + 1
	for g.done < need {
		if g.syncing {
			g.cond.Wait()
			continue
		}
		g.syncing = true
		g.started++
		round := g.started
		g.mu.Unlock()
		err := s.SyncWAL()
		g.mu.Lock()
		if err != nil && first == nil {
			first = err
		}
		g.done = round
		g.syncing = false
		g.cond.Broadcast()
	}
	g.mu.Unlock()
	return first
}

// walSyncLoop drives FsyncInterval until Close.
func (s *Service) walSyncLoop(every time.Duration) {
	defer close(s.syncDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.syncStop:
			return
		case <-t.C:
			s.SyncWAL()
		}
	}
}

// Checkpoint forces a snapshot + WAL rotation on every shard, returning
// the first shard's durability error if any shard is degraded. Volatile
// services return nil. blnamed calls it from the SIGTERM drain so a clean
// shutdown restarts from a snapshot, not a replay.
func (s *Service) Checkpoint() error {
	var first error
	for i, sh := range s.shards {
		sh.mu.Lock()
		if sh.dur != nil {
			s.flushWALLocked(i, sh) // drain any staged events first
			s.checkpointLocked(i, sh)
			if sh.dur.err != nil && first == nil {
				first = sh.dur.err
			}
		}
		sh.mu.Unlock()
	}
	return first
}

// Close checkpoints every durable shard, stops the interval syncer, and
// releases the stores. Safe to call on volatile services (no-op) and more
// than once. The Service must be quiescent: no concurrent Acquire,
// Release, or CloseEpoch (a Server must be Closed first).
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		if s.syncStop != nil {
			close(s.syncStop)
			<-s.syncDone
		}
		for i, sh := range s.shards {
			sh.mu.Lock()
			if sh.dur != nil {
				s.flushWALLocked(i, sh)
				s.checkpointLocked(i, sh)
				if sh.dur.err != nil && s.closeErr == nil {
					s.closeErr = sh.dur.err
				}
				sh.dur.store.Close()
			}
			sh.mu.Unlock()
		}
	})
	return s.closeErr
}
