package faultnet

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is an in-process TCP chaos proxy for one directed network link:
// it accepts on its own address, dials the target, and pumps bytes both
// ways through the link's fault state. AtoB is the direction from the
// accepting side toward the target (the bytes the dialing endpoint
// originates), BtoA the target's responses.
//
// A dial into a proxy whose AtoB direction is dropped is accepted at the
// TCP level (the listener's backlog completes the handshake — true SYN
// loss cannot be emulated above the socket API) but held before the
// target is dialed, so the application-level handshake stalls exactly
// like a half-open connection.
type Proxy struct {
	link   *Link
	target string
	ln     net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a chaos proxy for link on listen (host:port, port 0
// picks a free one) forwarding to target.
func NewProxy(listen, target string, link *Link) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{link: link, target: target, ln: ln}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the forwarding destination.
func (p *Proxy) Target() string { return p.target }

// Link returns the fault state governing this proxy.
func (p *Proxy) Link() *Link { return p.link }

// Close stops accepting and tears down every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.link.ResetConns()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handle(cc)
	}
}

// handle services one proxied connection: gate the target dial on the
// forward direction (half-open model), then pump both directions through
// the link.
func (p *Proxy) handle(cc net.Conn) {
	defer p.wg.Done()
	gc := &gatedConn{link: p.link, close: func() { cc.Close() }}
	if err := p.link.register(gc); err != nil {
		cc.Close()
		return
	}
	if err := p.link.gateDial(AtoB, gc); err != nil {
		p.link.unregister(gc)
		cc.Close()
		return
	}
	tc, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		p.link.unregister(gc)
		cc.Close()
		return
	}
	// Re-register the pair under one handle so a reset kills both sides.
	p.link.unregister(gc)
	pair := &gatedConn{link: p.link}
	pair.close = func() {
		cc.Close()
		tc.Close()
	}
	if err := p.link.register(pair); err != nil {
		cc.Close()
		tc.Close()
		return
	}
	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pump(cc, tc, AtoB, pair)
	}()
	go func() {
		defer pumps.Done()
		p.pump(tc, cc, BtoA, pair)
	}()
	pumps.Wait()
	p.link.unregister(pair)
	pair.kill()
}

// pump copies src to dst, gating every chunk through the link's dir
// state. A partitioned direction stalls here: bytes already read are held
// (TCP-retransmit model) and delivered on heal; a reset kills the pair.
func (p *Proxy) pump(src, dst net.Conn, dir Dir, pair *gatedConn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if gerr := p.link.gate(dir, n, pair); gerr != nil {
				pair.kill()
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				pair.kill()
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				pair.kill()
				return
			}
			// Half-close: propagate EOF but keep the reverse pump alive.
			if cw, ok := dst.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite()
			} else {
				pair.kill()
			}
			return
		}
	}
}
