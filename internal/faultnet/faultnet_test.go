package faultnet

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// echoServer accepts one connection, optionally writes a banner, then
// echoes everything back. Returns its address.
func echoServer(t *testing.T, banner string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if banner != "" {
					c.Write([]byte(banner))
				}
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

func startProxy(t *testing.T, target string) (*Proxy, *Link) {
	t.Helper()
	link := NewLink("test")
	p, err := NewProxy("127.0.0.1:0", target, link)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p, link
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func readN(t *testing.T, c net.Conn, n int, timeout time.Duration) ([]byte, error) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(timeout))
	defer c.SetReadDeadline(time.Time{})
	buf := make([]byte, n)
	got := 0
	for got < n {
		m, err := c.Read(buf[got:])
		got += m
		if err != nil {
			return buf[:got], err
		}
	}
	return buf, nil
}

func TestProxyPassThrough(t *testing.T) {
	addr := echoServer(t, "")
	p, _ := startProxy(t, addr)
	c := dial(t, p.Addr())
	msg := []byte("hello through the chaos layer")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := readN(t, c, len(msg), 5*time.Second)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
}

func TestPartitionStallsThenHealDelivers(t *testing.T) {
	addr := echoServer(t, "")
	p, link := startProxy(t, addr)
	c := dial(t, p.Addr())

	// Warm the path so the proxied pair exists before the partition.
	if _, err := c.Write([]byte("warm")); err != nil {
		t.Fatalf("warm write: %v", err)
	}
	if _, err := readN(t, c, 4, 5*time.Second); err != nil {
		t.Fatalf("warm read: %v", err)
	}

	link.Partition(false)
	if _, err := c.Write([]byte("lost?")); err != nil {
		t.Fatalf("write during partition: %v", err)
	}
	if got, err := readN(t, c, 5, 300*time.Millisecond); err == nil {
		t.Fatalf("read delivered %q through a full partition", got)
	}

	// Partition is stall, not loss: heal delivers the held bytes.
	link.Heal()
	got, err := readN(t, c, 5, 5*time.Second)
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(got) != "lost?" {
		t.Fatalf("after heal got %q, want %q", got, "lost?")
	}
}

func TestAsymmetricPartition(t *testing.T) {
	// Server pushes an unsolicited frame; client's outbound is dropped.
	addr := echoServer(t, "banner")
	p, link := startProxy(t, addr)
	c := dial(t, p.Addr())
	if _, err := readN(t, c, 6, 5*time.Second); err != nil {
		t.Fatalf("banner: %v", err)
	}

	link.Partition(true) // AtoB (client->server) only
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The echo never comes back (request lost) ...
	if got, err := readN(t, c, 4, 300*time.Millisecond); err == nil {
		t.Fatalf("one-way partition echoed %q", got)
	}
	// ... but the reverse direction still delivers: heal only to check
	// the held request was stalled, not dropped.
	link.Heal()
	got, err := readN(t, c, 4, 5*time.Second)
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(got) != "ping" {
		t.Fatalf("after heal got %q, want %q", got, "ping")
	}
}

func TestInboundStillFlowsDuringOneWayDrop(t *testing.T) {
	// One-way drop of the dialer's outbound must not block server pushes.
	srvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srvLn.Close() })
	push := make(chan net.Conn, 1)
	go func() {
		c, err := srvLn.Accept()
		if err != nil {
			return
		}
		push <- c
	}()
	p, link := startProxy(t, srvLn.Addr().String())
	c := dial(t, p.Addr())
	// Establish the pair before partitioning.
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	sc := <-push
	t.Cleanup(func() { sc.Close() })
	if _, err := readN(t, sc, 1, 5*time.Second); err != nil {
		t.Fatalf("server read: %v", err)
	}
	link.Partition(true)
	if _, err := sc.Write([]byte("push")); err != nil {
		t.Fatalf("server push: %v", err)
	}
	got, err := readN(t, c, 4, 5*time.Second)
	if err != nil {
		t.Fatalf("client read during one-way drop: %v", err)
	}
	if string(got) != "push" {
		t.Fatalf("got %q, want %q", got, "push")
	}
}

func TestResetKillsEstablishedConns(t *testing.T) {
	addr := echoServer(t, "")
	p, link := startProxy(t, addr)
	c := dial(t, p.Addr())
	if _, err := c.Write([]byte("warm")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := readN(t, c, 4, 5*time.Second); err != nil {
		t.Fatalf("read: %v", err)
	}
	link.ResetConns()
	if _, err := readN(t, c, 1, 5*time.Second); err == nil {
		t.Fatal("read survived a connection reset")
	}
}

func TestDialIntoPartitionStallsUntilHeal(t *testing.T) {
	addr := echoServer(t, "banner")
	p, link := startProxy(t, addr)
	link.Partition(false)
	c := dial(t, p.Addr()) // TCP accepts; app handshake must stall
	if got, err := readN(t, c, 6, 300*time.Millisecond); err == nil {
		t.Fatalf("banner %q delivered through partition", got)
	}
	link.Heal()
	got, err := readN(t, c, 6, 5*time.Second)
	if err != nil {
		t.Fatalf("banner after heal: %v", err)
	}
	if string(got) != "banner" {
		t.Fatalf("got %q, want %q", got, "banner")
	}
}

func TestLatencyInjection(t *testing.T) {
	addr := echoServer(t, "")
	p, link := startProxy(t, addr)
	c := dial(t, p.Addr())
	// Warm up without latency.
	c.Write([]byte("w"))
	if _, err := readN(t, c, 1, 5*time.Second); err != nil {
		t.Fatalf("warm: %v", err)
	}
	link.SetLatency(AtoB, 60*time.Millisecond)
	start := time.Now()
	c.Write([]byte("x"))
	if _, err := readN(t, c, 1, 5*time.Second); err != nil {
		t.Fatalf("read: %v", err)
	}
	if rtt := time.Since(start); rtt < 60*time.Millisecond {
		t.Fatalf("RTT %v under injected 60ms latency", rtt)
	}
}

func TestListenerWrapperGatesOutbound(t *testing.T) {
	link := NewLink("wrap")
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := &Listener{Listener: raw, Link: link}
	t.Cleanup(func() { ln.Close(); link.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write([]byte("banner"))
			}(c)
		}
	}()
	link.SetDrop(BtoA, true) // listener's outbound
	c := dial(t, raw.Addr().String())
	if got, err := readN(t, c, 6, 300*time.Millisecond); err == nil {
		t.Fatalf("banner %q delivered through wrapped-listener drop", got)
	}
	link.SetDrop(BtoA, false)
	got, err := readN(t, c, 6, 5*time.Second)
	if err != nil {
		t.Fatalf("banner after heal: %v", err)
	}
	if string(got) != "banner" {
		t.Fatalf("got %q, want %q", got, "banner")
	}
}

func TestDialerWrapperBlocksIntoPartition(t *testing.T) {
	addr := echoServer(t, "")
	link := NewLink("dialer")
	t.Cleanup(link.Close)
	link.SetDrop(AtoB, true)
	d := &Dialer{Link: link, Timeout: time.Second}
	done := make(chan error, 1)
	go func() {
		c, err := d.DialContextless(addr)
		if err == nil {
			c.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("dial completed through partition (err=%v)", err)
	case <-time.After(200 * time.Millisecond):
	}
	link.Heal()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dial after heal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dial still blocked after heal")
	}
}
