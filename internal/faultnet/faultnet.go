// Package faultnet is a deterministic network-fault layer: a per-link
// fault state (partitions, one-way drops, added latency, bandwidth caps,
// connection resets) applied either by wrapping in-process net.Conns
// (Dialer/Listener) or by a TCP chaos proxy interposed on a real link
// (proxy.go). Faults are driven by declarative, seed-deterministic
// schedules (schedule.go) in the scripted-strategy style of
// internal/adversary: a schedule compiled from (scenario, seed) is a pure
// value, so the same seed always yields the same fault event sequence.
//
// A partition is modeled as *stall*, not loss: TCP retransmits until the
// route heals, so a dropped direction holds bytes (backpressure) rather
// than discarding them, and new connection attempts toward a dropped
// direction hang like a lost SYN until the link heals or the attempt is
// torn down. Connection resets model route flaps that kill established
// flows outright.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Dir selects one direction of a link. A link joins two endpoints A and B;
// AtoB carries bytes originated by A, BtoA bytes originated by B. For a
// dialed connection, A is the dialer.
type Dir int

const (
	AtoB Dir = iota
	BtoA
)

func (d Dir) String() string {
	if d == AtoB {
		return "a->b"
	}
	return "b->a"
}

// reverse returns the opposite direction.
func (d Dir) reverse() Dir { return 1 - d }

// ErrLinkClosed is returned by gated I/O when the link (or the particular
// connection) was closed or reset while the operation waited out a fault.
var ErrLinkClosed = errors.New("faultnet: link closed")

// dirState is the fault state of one direction of a link.
type dirState struct {
	drop    bool
	latency time.Duration
	rate    int // bytes/sec; 0 = unlimited
}

// Link is the mutable fault state of one network link. All live
// connections riding the link (wrapped conns and proxied pairs) consult it
// on every transfer; Set* calls take effect immediately for blocked
// transfers via condition broadcast.
type Link struct {
	name string

	mu     sync.Mutex
	cond   *sync.Cond
	dirs   [2]dirState
	closed bool
	conns  map[*gatedConn]struct{}
}

// NewLink returns a healthy link. The name is used only for diagnostics.
func NewLink(name string) *Link {
	l := &Link{name: name, conns: make(map[*gatedConn]struct{})}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Name returns the diagnostic name given at construction.
func (l *Link) Name() string { return l.name }

// SetDrop sets or clears the partition state of one direction.
func (l *Link) SetDrop(d Dir, drop bool) {
	l.mu.Lock()
	l.dirs[d].drop = drop
	l.mu.Unlock()
	l.cond.Broadcast()
}

// SetLatency adds a fixed delay to every transfer in one direction.
func (l *Link) SetLatency(d Dir, lat time.Duration) {
	l.mu.Lock()
	l.dirs[d].latency = lat
	l.mu.Unlock()
	l.cond.Broadcast()
}

// SetRate caps one direction's throughput in bytes per second; 0 lifts
// the cap.
func (l *Link) SetRate(d Dir, bytesPerSec int) {
	l.mu.Lock()
	l.dirs[d].rate = bytesPerSec
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Partition drops both directions. With oneWay set only AtoB is dropped:
// bytes from the A side vanish while the B side's keep flowing — the
// asymmetric-partition case that timeouts, not connection errors, must
// catch.
func (l *Link) Partition(oneWay bool) {
	l.mu.Lock()
	l.dirs[AtoB].drop = true
	if !oneWay {
		l.dirs[BtoA].drop = true
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Heal clears drops, latency, and rate caps in both directions.
func (l *Link) Heal() {
	l.mu.Lock()
	l.dirs[AtoB] = dirState{}
	l.dirs[BtoA] = dirState{}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// ResetConns closes every live connection riding the link, modeling a
// route flap that RSTs established flows. The link's fault state is
// unchanged; new connections are still admitted per the drop state.
func (l *Link) ResetConns() {
	l.mu.Lock()
	victims := make([]*gatedConn, 0, len(l.conns))
	for c := range l.conns {
		victims = append(victims, c)
	}
	l.mu.Unlock()
	for _, c := range victims {
		c.kill()
	}
	l.cond.Broadcast()
}

// Close marks the link closed and kills every live connection. Gated
// operations in flight return ErrLinkClosed.
func (l *Link) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	victims := make([]*gatedConn, 0, len(l.conns))
	for c := range l.conns {
		victims = append(victims, c)
	}
	l.conns = make(map[*gatedConn]struct{})
	l.mu.Unlock()
	for _, c := range victims {
		c.kill()
	}
	l.cond.Broadcast()
}

// Dropped reports whether the given direction is currently partitioned.
func (l *Link) Dropped(d Dir) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dirs[d].drop
}

// register attaches a connection to the link for ResetConns/Close fanout.
func (l *Link) register(c *gatedConn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLinkClosed
	}
	l.conns[c] = struct{}{}
	return nil
}

func (l *Link) unregister(c *gatedConn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// gate blocks while dir is dropped, then applies latency and rate faults
// for an n-byte transfer. It returns ErrLinkClosed if the link or the
// connection dies while waiting — the caller must abandon the transfer.
func (l *Link) gate(dir Dir, n int, c *gatedConn) error {
	l.mu.Lock()
	for l.dirs[dir].drop && !l.closed && !c.dead.Load() {
		l.cond.Wait()
	}
	if l.closed || c.dead.Load() {
		l.mu.Unlock()
		return ErrLinkClosed
	}
	lat := l.dirs[dir].latency
	rate := l.dirs[dir].rate
	l.mu.Unlock()
	delay := lat
	if rate > 0 {
		delay += time.Duration(float64(n) / float64(rate) * float64(time.Second))
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// gateDial blocks while dir is dropped — the lost-SYN model for new
// connections into a partition. It returns nil once the direction is
// clear, or ErrLinkClosed if the link/conn dies first.
func (l *Link) gateDial(dir Dir, c *gatedConn) error {
	return l.gate(dir, 0, c)
}

// Conn wraps a net.Conn with the link's fault state. The out direction
// gates writes (bytes this endpoint originates); reads are gated in the
// reverse direction after the bytes arrive, modeling in-flight delivery
// delay and inbound partitions.
type Conn struct {
	net.Conn
	gc  *gatedConn
	out Dir
}

// gatedConn is the registration handle shared by wrapper conns and proxy
// pairs: kill() closes the underlying transport(s) exactly once.
type gatedConn struct {
	link  *Link
	dead  atomic.Bool
	close func()
	once  sync.Once
}

func (g *gatedConn) kill() {
	g.dead.Store(true)
	g.once.Do(g.close)
	// Wake any gate() blocked on this connection inside a partition.
	g.link.cond.Broadcast()
}

// newConn wraps nc on link; out is the direction of bytes written by this
// endpoint.
func newConn(nc net.Conn, link *Link, out Dir) (*Conn, error) {
	gc := &gatedConn{link: link, close: func() { nc.Close() }}
	if err := link.register(gc); err != nil {
		nc.Close()
		return nil, err
	}
	return &Conn{Conn: nc, gc: gc, out: out}, nil
}

// Read delivers inbound bytes after gating them through the link's
// inbound direction.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		if gerr := c.gc.link.gate(c.out.reverse(), n, c.gc); gerr != nil {
			c.Close()
			return 0, gerr
		}
	}
	return n, err
}

// Write gates outbound bytes through the link's outbound direction before
// handing them to the transport.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gc.link.gate(c.out, len(p), c.gc); err != nil {
		c.Close()
		return 0, err
	}
	return c.Conn.Write(p)
}

// Close closes the wrapped connection and detaches it from the link.
func (c *Conn) Close() error {
	c.gc.kill()
	c.gc.link.unregister(c.gc)
	return nil
}

// Dialer dials through a link: the resulting connection's writes ride
// AtoB (the dialer is A). The Dial field, when set, replaces
// net.DialTimeout — it is the hook namesvc.ClientConfig.Dial composes
// with.
type Dialer struct {
	Link    *Link
	Timeout time.Duration
	Dial    func(addr string) (net.Conn, error)
}

// DialContextless dials addr through the fault link. A dial toward a
// dropped AtoB direction blocks (lost SYN) until heal, reset, or link
// close.
func (d *Dialer) DialContextless(addr string) (net.Conn, error) {
	// Gate before connecting: a SYN into a partition never completes the
	// handshake. Use a transient registration so ResetConns aborts us.
	gc := &gatedConn{link: d.Link, close: func() {}}
	if err := d.Link.register(gc); err != nil {
		return nil, err
	}
	err := d.Link.gateDial(AtoB, gc)
	d.Link.unregister(gc)
	if err != nil {
		return nil, err
	}
	var nc net.Conn
	if d.Dial != nil {
		nc, err = d.Dial(addr)
	} else {
		to := d.Timeout
		if to <= 0 {
			to = 10 * time.Second
		}
		nc, err = net.DialTimeout("tcp", addr, to)
	}
	if err != nil {
		return nil, err
	}
	return newConn(nc, d.Link, AtoB)
}

// Listener wraps an accept loop with the link: accepted connections'
// writes ride BtoA (the listener is B).
type Listener struct {
	net.Listener
	Link *Link
}

// Accept returns the next connection wrapped in the link's fault state.
func (ln *Listener) Accept() (net.Conn, error) {
	nc, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	c, err := newConn(nc, ln.Link, BtoA)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// String renders the link's current fault state for logs.
func (l *Link) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("link %s [a->b drop=%v lat=%v rate=%d] [b->a drop=%v lat=%v rate=%d]",
		l.name,
		l.dirs[AtoB].drop, l.dirs[AtoB].latency, l.dirs[AtoB].rate,
		l.dirs[BtoA].drop, l.dirs[BtoA].latency, l.dirs[BtoA].rate)
}
