package faultnet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ballsintoleaves/internal/rng"
)

// Action is the kind of a scheduled fault event.
type Action int

const (
	// ActPartition drops the target's traffic (both directions, or only
	// the traffic toward it when OneWay is set — the target is deafened)
	// and, when two-way, resets established flows.
	ActPartition Action = iota
	// ActHeal clears every fault on the target.
	ActHeal
	// ActLatency adds fixed delay in both directions.
	ActLatency
	// ActRate caps throughput in both directions.
	ActRate
	// ActReset kills established connections without changing fault
	// state — a route flap.
	ActReset
)

func (a Action) String() string {
	switch a {
	case ActPartition:
		return "partition"
	case ActHeal:
		return "heal"
	case ActLatency:
		return "latency"
	case ActRate:
		return "rate"
	case ActReset:
		return "reset"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Event is one scheduled fault. Target is a role selector resolved at
// fire time ("leader", "follower", or any name the driver's resolver
// understands); the schedule itself never names concrete nodes, so the
// compiled event sequence is identical across runs even though elections
// land on different nodes.
type Event struct {
	At      time.Duration // offset from schedule start
	Action  Action
	Target  string
	OneWay  bool          // ActPartition: deafen the target (drop only traffic toward it)
	Latency time.Duration // ActLatency
	Rate    int           // ActRate, bytes/sec
}

// String renders the event deterministically — the unit the replay
// assertion compares.
func (e Event) String() string {
	s := fmt.Sprintf("t=+%v %v %s", e.At, e.Action, e.Target)
	switch {
	case e.Action == ActPartition && e.OneWay:
		s += " (one-way)"
	case e.Action == ActLatency:
		s += fmt.Sprintf(" %v", e.Latency)
	case e.Action == ActRate:
		s += fmt.Sprintf(" %dB/s", e.Rate)
	}
	return s
}

// Scenarios lists the named chaos scenarios Compile understands.
func Scenarios() []string {
	return []string{"partition-leader", "asymmetric-split", "flapping-follower"}
}

// Compile expands a named scenario into its concrete event schedule over
// a run of length d. It is a pure function of (name, d, seed): randomized
// scenarios derive every choice from the seed (internal/adversary's
// scripted-strategy contract), so the same inputs always produce the same
// fault event sequence. Every scenario ends healed.
func Compile(name string, d time.Duration, seed uint64) ([]Event, error) {
	if d <= 0 {
		return nil, fmt.Errorf("faultnet: non-positive schedule duration %v", d)
	}
	frac := func(num, den int64) time.Duration {
		return d * time.Duration(num) / time.Duration(den)
	}
	var ev []Event
	switch name {
	case "partition-leader":
		// Cut the leader off from peers and clients mid-run; heal with
		// enough tail for catch-up and convergence.
		ev = []Event{
			{At: frac(1, 4), Action: ActPartition, Target: "leader"},
			{At: frac(3, 5), Action: ActHeal, Target: "leader"},
		}
	case "asymmetric-split":
		// A follower is deafened: it transmits — heartbeat acks, campaign
		// solicitations — but hears nothing, so its election timer fires
		// while every peer still hears the live leader. The election-
		// stability worst case: only timeouts, never connection errors,
		// expose the fault, and a hardened cluster must ride it out with
		// zero disruptive elections.
		ev = []Event{
			{At: frac(1, 4), Action: ActPartition, Target: "follower", OneWay: true},
			{At: frac(3, 5), Action: ActHeal, Target: "follower"},
		}
	case "flapping-follower":
		// A follower's route flaps: seed-derived number of short
		// partition/heal cycles, then a final heal.
		r := rng.New(rng.DeriveSeed(seed, 0xf1a9))
		flaps := 3 + r.Intn(3)
		// Flaps occupy the middle [1/5, 4/5] of the run.
		window := frac(3, 5)
		start := frac(1, 5)
		slot := window / time.Duration(flaps)
		for i := 0; i < flaps; i++ {
			at := start + slot*time.Duration(i)
			// Down for a seed-derived 30-70% of the slot.
			down := slot * time.Duration(30+r.Intn(41)) / 100
			ev = append(ev,
				Event{At: at, Action: ActPartition, Target: "follower"},
				Event{At: at + down, Action: ActHeal, Target: "follower"},
			)
		}
	default:
		return nil, fmt.Errorf("faultnet: unknown scenario %q (have %v)", name, Scenarios())
	}
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	return ev, nil
}

// Applier binds a role selector to concrete link state at fire time.
// Implementations decide which links a target touches (a node's client
// link plus every peer link, typically) and how OneWay maps onto
// per-connection directions.
type Applier interface {
	Apply(Event)
}

// ApplierFunc adapts a closure to Applier.
type ApplierFunc func(Event)

// Apply implements Applier.
func (f ApplierFunc) Apply(e Event) { f(e) }

// Driver fires a compiled schedule against an Applier in real time. The
// fired log records each event with its *scheduled* offset, so the
// observable sequence is deterministic regardless of wall-clock jitter.
type Driver struct {
	events []Event
	apply  Applier
	logf   func(format string, args ...any)

	mu    sync.Mutex
	fired []Event
}

// NewDriver builds a driver over a compiled schedule. logf may be nil.
func NewDriver(events []Event, apply Applier, logf func(string, ...any)) *Driver {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Driver{events: events, apply: apply, logf: logf}
}

// Run fires every event at its offset from now, in order; it returns
// after the last event, or early when stop closes. Events are applied
// synchronously — Appliers must not block for long.
func (dr *Driver) Run(stop <-chan struct{}) {
	start := time.Now()
	for _, e := range dr.events {
		wait := e.At - time.Since(start)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return
			}
		} else {
			select {
			case <-stop:
				return
			default:
			}
		}
		dr.logf("chaos: %s", e)
		dr.apply.Apply(e)
		dr.mu.Lock()
		dr.fired = append(dr.fired, e)
		dr.mu.Unlock()
	}
}

// Fired returns the events applied so far, each stamped with its
// scheduled offset. After an uninterrupted Run this equals the compiled
// schedule exactly — the deterministic-replay invariant.
func (dr *Driver) Fired() []Event {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	out := make([]Event, len(dr.fired))
	copy(out, dr.fired)
	return out
}
