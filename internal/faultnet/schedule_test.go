package faultnet

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCompileDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		a, err := Compile(sc, 20*time.Second, 42)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		b, err := Compile(sc, 20*time.Second, 42)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed compiled different schedules:\n%v\n%v", sc, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty schedule", sc)
		}
	}
}

func TestCompileEndsHealed(t *testing.T) {
	for _, sc := range Scenarios() {
		ev, err := Compile(sc, 20*time.Second, 7)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		last := ev[len(ev)-1]
		if last.Action != ActHeal {
			t.Fatalf("%s: final event %v is not a heal", sc, last)
		}
		for i := 1; i < len(ev); i++ {
			if ev[i].At < ev[i-1].At {
				t.Fatalf("%s: events out of order: %v before %v", sc, ev[i-1], ev[i])
			}
		}
	}
}

func TestCompileUnknownScenario(t *testing.T) {
	if _, err := Compile("split-brain-rave", time.Second, 1); err == nil {
		t.Fatal("unknown scenario compiled")
	}
	if _, err := Compile("partition-leader", 0, 1); err == nil {
		t.Fatal("zero-duration schedule compiled")
	}
}

func TestDriverFiresScheduleInOrder(t *testing.T) {
	ev, err := Compile("flapping-follower", 300*time.Millisecond, 11)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var applied []Event
	dr := NewDriver(ev, ApplierFunc(func(e Event) {
		mu.Lock()
		applied = append(applied, e)
		mu.Unlock()
	}), t.Logf)
	stop := make(chan struct{})
	dr.Run(stop)
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(applied, ev) {
		t.Fatalf("applied %v, want %v", applied, ev)
	}
	// The fired log is the compiled schedule verbatim: the
	// deterministic-replay invariant.
	if got := dr.Fired(); !reflect.DeepEqual(got, ev) {
		t.Fatalf("fired %v, want %v", got, ev)
	}
}

func TestDriverStops(t *testing.T) {
	ev := []Event{
		{At: 0, Action: ActReset, Target: "leader"},
		{At: time.Hour, Action: ActHeal, Target: "leader"},
	}
	dr := NewDriver(ev, ApplierFunc(func(Event) {}), nil)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		dr.Run(stop)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("driver did not stop")
	}
	if got := dr.Fired(); len(got) != 1 {
		t.Fatalf("fired %v, want only the first event", got)
	}
}
