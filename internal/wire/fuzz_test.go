package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeedPayload builds one representative payload exercising every
// encoding primitive, used (whole and cut at every offset — the same
// cut-point corpus the deterministic tests walk) to seed both fuzz targets.
func fuzzSeedPayload() []byte {
	var w Writer
	w.Byte(3)
	w.Uvarint(0)
	w.Uvarint(300)
	w.Uvarint(1<<56 + 17)
	w.Raw([]byte("payload"))
	return w.Bytes()
}

// FuzzReadFrame feeds arbitrary byte streams to the frame layer. Every
// outcome must be one of the three documented clean errors or a well-formed
// frame that round-trips through WriteFrame; panics and misclassified
// failures are bugs.
func FuzzReadFrame(f *testing.F) {
	var stream bytes.Buffer
	WriteFrame(&stream, fuzzSeedPayload())
	WriteFrame(&stream, nil)
	full := stream.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		f.Add(full[:cut], 64)
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 64) // hostile ~4 GiB prefix
	f.Add([]byte{0, 0, 0, 0}, 0)              // empty frame at limit 0

	f.Fuzz(func(t *testing.T, data []byte, max int) {
		if max < 0 {
			max = -max
		}
		max %= 1 << 16
		r := bytes.NewReader(data)
		var buf []byte
		for {
			frame, err := ReadFrame(r, buf, max)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversized) {
					t.Fatalf("unclassified error: %v", err)
				}
				return
			}
			if len(frame) > max {
				t.Fatalf("frame of %d bytes exceeds limit %d", len(frame), max)
			}
			// A frame that read successfully must round-trip bit-exactly.
			var out bytes.Buffer
			if err := WriteFrame(&out, frame); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			reread, err := ReadFrame(&out, nil, max)
			if err != nil || !bytes.Equal(reread, frame) {
				t.Fatalf("round trip: %v (got %q, want %q)", err, reread, frame)
			}
			buf = frame
		}
	})
}

// FuzzPayloadDecode drives the Reader decoding primitives with an
// input-derived op script over an arbitrary payload: whatever the sequence,
// decoding must never panic, never read out of bounds, fail exactly once
// (errors are sticky), and account for every consumed byte.
func FuzzPayloadDecode(f *testing.F) {
	full := fuzzSeedPayload()
	for cut := 0; cut <= len(full); cut++ {
		f.Add([]byte{0, 1, 1, 2, 3}, full[:cut])
	}
	f.Add([]byte{2, 2, 2, 2}, []byte{0x80})          // truncated uvarint
	f.Add([]byte{3, 0}, []byte("tail"))              // Rest then Byte
	f.Add([]byte{1}, []byte{0xff, 0xff, 0xff, 0xff}) // 10-byte uvarint cut short

	f.Fuzz(func(t *testing.T, script, payload []byte) {
		r := NewReader(payload)
		sawErr := false
		consumed := 0
		for _, op := range script {
			before := r.Remaining()
			switch op % 4 {
			case 0:
				r.Byte()
			case 1:
				r.Uvarint()
			case 2:
				r.Bytes(int(op) % 9)
			case 3:
				r.Rest()
			}
			after := r.Remaining()
			if after > before || after < 0 {
				t.Fatalf("remaining went from %d to %d", before, after)
			}
			// Errors are sticky: once failed, no further bytes move.
			if sawErr && after != before {
				t.Fatalf("consumed %d bytes after an error", before-after)
			}
			consumed += before - after
			sawErr = sawErr || r.Err() != nil
		}
		if consumed > len(payload) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(payload))
		}
		err := r.Close()
		switch {
		case sawErr && err == nil:
			t.Fatal("Close lost the decoding error")
		case !sawErr && r.Remaining() > 0 && !errors.Is(err, ErrTrailing):
			t.Fatalf("%d unread bytes but Close = %v, want ErrTrailing", r.Remaining(), err)
		case !sawErr && r.Remaining() == 0 && err != nil:
			t.Fatalf("fully consumed payload but Close = %v", err)
		}
	})
}
