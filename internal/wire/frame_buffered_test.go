package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// TestReadFrameBufferedCutSweep runs the non-blocking drain against a stream
// cut at every possible byte offset — inside the length prefix, inside the
// payload, and exactly on frame boundaries. At each cut the drain must hand
// back every frame whose bytes are fully buffered, never consume a partial
// frame, and resume cleanly once the rest of the stream arrives. This is the
// exact sequence the server's batched reader performs when TCP segments split
// frames at arbitrary points.
func TestReadFrameBufferedCutSweep(t *testing.T) {
	t.Parallel()
	payloads := [][]byte{
		[]byte("alpha"),
		nil, // empty frame: header only
		bytes.Repeat([]byte{0x5a}, 37),
		{0xff},
	}
	var stream bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&stream, p); err != nil {
			t.Fatal(err)
		}
	}
	full := stream.Bytes()

	// ends[i] = offset just past frame i; framesBefore(cut) = number of
	// complete frames strictly within full[:cut].
	ends := make([]int, len(payloads))
	off := 0
	for i, p := range payloads {
		off += frameHeaderLen + len(p)
		ends[i] = off
	}
	framesBefore := func(cut int) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}

	for cut := 1; cut < len(full); cut++ {
		br := bufio.NewReaderSize(&halfFeeder{data: full, cut: cut}, 1<<10)
		// Prime the buffer with exactly the first feed, consuming nothing.
		if _, err := br.Peek(1); err != nil {
			t.Fatalf("cut %d: peek: %v", cut, err)
		}
		if br.Buffered() != cut {
			t.Fatalf("cut %d: buffered %d bytes after peek", cut, br.Buffered())
		}

		var got [][]byte
		var buf []byte
		for {
			frame, ok, err := ReadFrameBuffered(br, buf, testMaxFrame)
			if err != nil {
				t.Fatalf("cut %d: drain: %v", cut, err)
			}
			if !ok {
				break
			}
			got = append(got, append([]byte(nil), frame...))
			buf = frame
		}
		if want := framesBefore(cut); len(got) != want {
			t.Fatalf("cut %d: drained %d frames, want %d", cut, len(got), want)
		}
		for i, g := range got {
			if !bytes.Equal(g, payloads[i]) {
				t.Fatalf("cut %d: frame %d = %q, want %q", cut, i, g, payloads[i])
			}
		}

		// The partial frame (if any) was left intact: blocking reads finish
		// it and the remainder of the stream, byte-for-byte.
		for i := len(got); i < len(payloads); i++ {
			frame, err := ReadFrame(br, buf, testMaxFrame)
			if err != nil {
				t.Fatalf("cut %d: resume frame %d: %v", cut, i, err)
			}
			if !bytes.Equal(frame, payloads[i]) {
				t.Fatalf("cut %d: resume frame %d = %q, want %q", cut, i, frame, payloads[i])
			}
			buf = frame
		}
		if _, err := ReadFrame(br, buf, testMaxFrame); err != io.EOF {
			t.Fatalf("cut %d: after last frame: %v, want io.EOF", cut, err)
		}
	}
}

// TestReadFrameBufferedHeaderSplit pins the narrowest case of the sweep: a
// length prefix split across two reads must report "no frame" without
// consuming the prefix bytes already buffered.
func TestReadFrameBufferedHeaderSplit(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := stream.Bytes()
	for cut := 1; cut < frameHeaderLen; cut++ {
		br := bufio.NewReaderSize(&halfFeeder{data: full, cut: cut}, 1<<10)
		if _, err := br.Peek(1); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := ReadFrameBuffered(br, nil, testMaxFrame); ok || err != nil {
			t.Fatalf("header cut at %d: ok=%v, err=%v", cut, ok, err)
		}
		if br.Buffered() != cut {
			t.Fatalf("header cut at %d: drain consumed %d of %d buffered bytes",
				cut, cut-br.Buffered(), cut)
		}
		got, err := ReadFrame(br, nil, testMaxFrame)
		if err != nil || !bytes.Equal(got, []byte("payload")) {
			t.Fatalf("header cut at %d: resume = %q, %v", cut, got, err)
		}
	}
}
