// Package wire provides the binary wire format primitives used by every
// protocol in this repository. Messages are encoded with unsigned varints
// (identical to encoding/binary's varint scheme) behind small Writer/Reader
// types that accumulate errors, so protocol codecs read as straight-line
// code and malformed payloads surface as a single error instead of panics.
//
// Keeping the codecs explicit (rather than using reflection-based encoders)
// makes per-round bit accounting exact, which experiment E10 measures.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a Reader runs out of bytes mid-field.
var ErrTruncated = errors.New("wire: truncated payload")

// ErrTrailing is returned by Reader.Close when decoded messages leave
// unconsumed bytes, which indicates a framing bug or corruption.
var ErrTrailing = errors.New("wire: trailing bytes after message")

// Writer accumulates an encoded payload. The zero value is ready to use;
// Reset allows reuse across rounds without reallocation.
type Writer struct {
	buf []byte
}

// Reset truncates the writer, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the encoded payload. The slice aliases the writer's buffer;
// callers that retain it across a Reset must copy it first.
func (w *Writer) Bytes() []byte { return w.buf }

// Byte appends a single raw byte (used for message kind tags).
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Raw appends b verbatim (used for nested payloads whose length is carried
// by the enclosing frame or by a preceding varint).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// UvarintLen returns the encoded size of v in bytes without writing it,
// for analytic bit accounting.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Reader decodes a payload produced by Writer. Decoding methods return zero
// values after the first error; check Err (or Close) once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Close verifies the payload was fully consumed and returns the first
// error encountered, if any.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.err = ErrTruncated
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bytes consumes and returns exactly n bytes. The slice aliases the
// reader's buffer. Fewer than n remaining bytes is an ErrTruncated.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Rest consumes and returns every remaining byte. The slice aliases the
// reader's buffer. It is used for payloads whose length is implied by the
// enclosing frame rather than encoded explicitly.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.off += n
	return v
}
