package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame I/O: the length-prefixed framing used to carry wire payloads over a
// byte stream (a TCP connection in internal/transport). Each frame is a
// 4-byte big-endian length followed by that many payload bytes. The framing
// layer is deliberately dumb — it knows nothing about payload contents — so
// every failure mode of a real socket maps onto one of three clean errors:
//
//   - a stream that ends cleanly on a frame boundary yields io.EOF;
//   - a stream cut mid-header or mid-body yields ErrTruncated, exactly as a
//     payload cut mid-field does inside Reader — the two layers share the
//     sentinel so "the sender crashed mid-broadcast" is one error class;
//   - a length prefix above the caller's limit yields ErrOversized before
//     any body byte is read, bounding memory against corrupt or hostile
//     peers.

// ErrOversized is returned by ReadFrame when a frame's length prefix
// exceeds the caller's limit. The body is not read; the connection should
// be closed, since the stream position is no longer trustworthy.
var ErrOversized = errors.New("wire: frame length exceeds limit")

// frameHeaderLen is the size of the big-endian length prefix.
const frameHeaderLen = 4

// WriteFrame writes payload as one length-prefixed frame. Writers that
// batch frames (bufio.Writer over a socket) should flush once per frame or
// per round.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends payload as one length-prefixed frame to dst and
// returns the extended slice — the allocation-free counterpart of
// WriteFrame for callers that batch many frames into one contiguous buffer
// and flush it with a single Write (the writev pattern collapsed to one
// iovec, since the frames are already adjacent in memory).
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrameBuffered reads one length-prefixed frame from br only if the
// frame is already complete in br's buffer, reusing buf's capacity; ok
// reports whether a frame was consumed. It never blocks and never issues a
// read on the underlying stream: a partially buffered frame is left intact
// for a later blocking ReadFrame to finish. An oversized length prefix is
// reported as soon as the 4-byte header is buffered (ErrOversized), without
// consuming it, so the caller's error handling matches ReadFrame's.
//
// This is the ingestion primitive for batched request handling: after one
// blocking ReadFrame, a handler drains every complete pipelined frame the
// kernel already delivered and processes the burst as a unit.
func ReadFrameBuffered(br *bufio.Reader, buf []byte, max int) (_ []byte, ok bool, err error) {
	if br.Buffered() < frameHeaderLen {
		return buf, false, nil
	}
	hdr, err := br.Peek(frameHeaderLen)
	if err != nil {
		return buf, false, err
	}
	length32 := binary.BigEndian.Uint32(hdr)
	if max < 0 || uint64(length32) > uint64(max) {
		return buf, false, fmt.Errorf("%w: %d > %d", ErrOversized, length32, max)
	}
	length := int(length32)
	if br.Buffered() < frameHeaderLen+length {
		return buf, false, nil
	}
	if _, err := br.Discard(frameHeaderLen); err != nil {
		return buf, false, err
	}
	if cap(buf) < length {
		buf = make([]byte, length)
	}
	buf = buf[:length]
	if _, err := io.ReadFull(br, buf); err != nil {
		// Unreachable with a correct bufio.Reader: the bytes were buffered.
		return buf, false, err
	}
	return buf, true, nil
}

// ReadFrame reads one length-prefixed frame from r, reusing buf's capacity
// when it suffices. It returns io.EOF only when the stream ends cleanly
// before the first header byte; a partial header or body yields
// ErrTruncated, and a length prefix above max yields ErrOversized.
//
// The header is staged in buf too (a stack array would escape through the
// io.Reader interface and cost a heap allocation per frame), so a caller
// that threads each returned slice into the next call reads frames without
// touching the heap once the buffer has grown to the stream's frame size.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	if cap(buf) < frameHeaderLen {
		buf = make([]byte, frameHeaderLen, 512)
	}
	hdr := buf[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: frame header cut short", ErrTruncated)
		}
		return nil, err
	}
	// Compare before narrowing to int: on 32-bit platforms a hostile
	// prefix >= 2^31 would otherwise wrap negative and bypass the guard.
	length32 := binary.BigEndian.Uint32(hdr)
	if max < 0 || uint64(length32) > uint64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrOversized, length32, max)
	}
	length := int(length32)
	if cap(buf) < length {
		bodyCap := length
		if bodyCap < 512 {
			bodyCap = 512 // keep header staging allocation-free afterwards
		}
		buf = make([]byte, length, bodyCap)
	}
	buf = buf[:length]
	if n, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: frame body cut short (%d of %d bytes)", ErrTruncated, n, length)
		}
		return nil, err
	}
	return buf, nil
}
