package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame I/O: the length-prefixed framing used to carry wire payloads over a
// byte stream (a TCP connection in internal/transport). Each frame is a
// 4-byte big-endian length followed by that many payload bytes. The framing
// layer is deliberately dumb — it knows nothing about payload contents — so
// every failure mode of a real socket maps onto one of three clean errors:
//
//   - a stream that ends cleanly on a frame boundary yields io.EOF;
//   - a stream cut mid-header or mid-body yields ErrTruncated, exactly as a
//     payload cut mid-field does inside Reader — the two layers share the
//     sentinel so "the sender crashed mid-broadcast" is one error class;
//   - a length prefix above the caller's limit yields ErrOversized before
//     any body byte is read, bounding memory against corrupt or hostile
//     peers.

// ErrOversized is returned by ReadFrame when a frame's length prefix
// exceeds the caller's limit. The body is not read; the connection should
// be closed, since the stream position is no longer trustworthy.
var ErrOversized = errors.New("wire: frame length exceeds limit")

// frameHeaderLen is the size of the big-endian length prefix.
const frameHeaderLen = 4

// WriteFrame writes payload as one length-prefixed frame. Writers that
// batch frames (bufio.Writer over a socket) should flush once per frame or
// per round.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends payload as one length-prefixed frame to dst and
// returns the extended slice — the allocation-free counterpart of
// WriteFrame for callers that batch many frames into one contiguous buffer
// and flush it with a single Write (the writev pattern collapsed to one
// iovec, since the frames are already adjacent in memory).
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrame reads one length-prefixed frame from r, reusing buf's capacity
// when it suffices. It returns io.EOF only when the stream ends cleanly
// before the first header byte; a partial header or body yields
// ErrTruncated, and a length prefix above max yields ErrOversized.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: frame header cut short", ErrTruncated)
		}
		return nil, err
	}
	// Compare before narrowing to int: on 32-bit platforms a hostile
	// prefix >= 2^31 would otherwise wrap negative and bypass the guard.
	length32 := binary.BigEndian.Uint32(hdr[:])
	if max < 0 || uint64(length32) > uint64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrOversized, length32, max)
	}
	length := int(length32)
	if cap(buf) < length {
		buf = make([]byte, length)
	}
	buf = buf[:length]
	if n, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: frame body cut short (%d of %d bytes)", ErrTruncated, n, length)
		}
		return nil, err
	}
	return buf, nil
}
