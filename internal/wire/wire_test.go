package wire

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	var w Writer
	w.Byte(7)
	w.Uvarint(0)
	w.Uvarint(127)
	w.Uvarint(128)
	w.Uvarint(1 << 60)
	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Fatalf("byte = %d", got)
	}
	for _, want := range []uint64{0, 127, 128, 1 << 60} {
		if got := r.Uvarint(); got != want {
			t.Fatalf("uvarint = %d, want %d", got, want)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestTruncatedDetected(t *testing.T) {
	t.Parallel()
	var w Writer
	w.Uvarint(300) // two bytes
	r := NewReader(w.Bytes()[:1])
	r.Uvarint()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
	// Subsequent reads stay zero and keep the first error.
	if got := r.Byte(); got != 0 {
		t.Fatalf("read after error = %d", got)
	}
	if !errors.Is(r.Close(), ErrTruncated) {
		t.Fatalf("close = %v", r.Close())
	}
}

func TestEmptyPayloadByte(t *testing.T) {
	t.Parallel()
	r := NewReader(nil)
	r.Byte()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestTrailingDetected(t *testing.T) {
	t.Parallel()
	var w Writer
	w.Byte(1)
	w.Byte(2)
	r := NewReader(w.Bytes())
	r.Byte()
	if !errors.Is(r.Close(), ErrTrailing) {
		t.Fatalf("close = %v, want ErrTrailing", r.Close())
	}
}

func TestWriterReset(t *testing.T) {
	t.Parallel()
	var w Writer
	w.Uvarint(999)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("len after reset = %d", w.Len())
	}
	w.Byte(5)
	if w.Len() != 1 || w.Bytes()[0] != 5 {
		t.Fatalf("write after reset corrupted: %v", w.Bytes())
	}
}

func TestUvarintLenMatchesEncoding(t *testing.T) {
	t.Parallel()
	prop := func(v uint64) bool {
		var w Writer
		w.Uvarint(v)
		return UvarintLen(v) == w.Len()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintRoundTripProperty(t *testing.T) {
	t.Parallel()
	prop := func(vs []uint64) bool {
		var w Writer
		for _, v := range vs {
			w.Uvarint(v)
		}
		r := NewReader(w.Bytes())
		for _, v := range vs {
			if r.Uvarint() != v {
				return false
			}
		}
		return r.Close() == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
