package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

const testMaxFrame = 1 << 16

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()
	payloads := [][]byte{
		[]byte("hello"),
		nil,
		bytes.Repeat([]byte{0xab}, 1000),
		{0},
	}
	var stream bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&stream, p); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	for i, want := range payloads {
		got, err := ReadFrame(&stream, buf, testMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
		buf = got
	}
	if _, err := ReadFrame(&stream, buf, testMaxFrame); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameBufferReuse(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 64)
	got, err := ReadFrame(&stream, buf, testMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("frame body not read into the provided buffer")
	}
}

// TestFrameTruncatedHeader covers a connection dropped mid-length-prefix:
// every partial header length must surface ErrTruncated, not io.EOF and not
// a panic.
func TestFrameTruncatedHeader(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := stream.Bytes()
	for cut := 1; cut < frameHeaderLen; cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), nil, testMaxFrame)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("header cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestFrameTruncatedBody covers a sender crashing mid-broadcast: the length
// prefix arrived but the body was cut short at every possible offset.
func TestFrameTruncatedBody(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := stream.Bytes()
	for cut := frameHeaderLen; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), nil, testMaxFrame)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("body cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestFrameOversized asserts that a hostile or corrupt length prefix is
// rejected before any body byte is read, so no allocation is sized by
// attacker-controlled input.
func TestFrameOversized(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, bytes.Repeat([]byte{1}, testMaxFrame+1)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&stream, nil, testMaxFrame)
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
	// A length prefix with the high bytes set (claims ~4 GiB) must fail the
	// same way even though no such body exists.
	_, err = ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), nil, testMaxFrame)
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
}

// TestFrameGarbageNeverPanics feeds random byte streams to ReadFrame; every
// outcome must be a clean error or a well-formed frame.
func TestFrameGarbageNeverPanics(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		raw := make([]byte, rng.Intn(64))
		rng.Read(raw)
		r := bytes.NewReader(raw)
		var buf []byte
		for {
			frame, err := ReadFrame(r, buf, 32)
			if err != nil {
				break
			}
			buf = frame
		}
	}
}

func TestReaderRest(t *testing.T) {
	t.Parallel()
	var w Writer
	w.Byte(9)
	w.Uvarint(300)
	tail := []byte{1, 2, 3}
	for _, b := range tail {
		w.Byte(b)
	}
	r := NewReader(w.Bytes())
	r.Byte()
	r.Uvarint()
	if got := r.Rest(); !bytes.Equal(got, tail) {
		t.Fatalf("rest = %v, want %v", got, tail)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close after rest: %v", err)
	}
	// Rest after an error stays nil and preserves the error.
	r2 := NewReader([]byte{0x80}) // truncated uvarint
	r2.Uvarint()
	if got := r2.Rest(); got != nil {
		t.Fatalf("rest after error = %v", got)
	}
	if !errors.Is(r2.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r2.Err())
	}
}
