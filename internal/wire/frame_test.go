package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

const testMaxFrame = 1 << 16

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()
	payloads := [][]byte{
		[]byte("hello"),
		nil,
		bytes.Repeat([]byte{0xab}, 1000),
		{0},
	}
	var stream bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&stream, p); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	for i, want := range payloads {
		got, err := ReadFrame(&stream, buf, testMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
		buf = got
	}
	if _, err := ReadFrame(&stream, buf, testMaxFrame); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// halfFeeder doles out its stream in two reads, so a bufio.Reader layered
// on it holds a partial frame between fills.
type halfFeeder struct {
	data []byte
	cut  int // first read returns data[:cut]
	pos  int
}

func (f *halfFeeder) Read(p []byte) (int, error) {
	if f.pos >= len(f.data) {
		return 0, io.EOF
	}
	limit := len(f.data)
	if f.pos < f.cut {
		limit = f.cut
	}
	n := copy(p, f.data[f.pos:limit])
	f.pos += n
	return n, nil
}

// TestReadFrameBuffered covers the non-blocking drain primitive: complete
// buffered frames are consumed one by one, a partially buffered frame is
// left intact for a blocking ReadFrame to finish, and an oversized length
// prefix errors as soon as its header is visible.
func TestReadFrameBuffered(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	payloads := [][]byte{[]byte("alpha"), []byte("bee"), bytes.Repeat([]byte{7}, 100)}
	for _, p := range payloads {
		if err := WriteFrame(&stream, p); err != nil {
			t.Fatal(err)
		}
	}
	full := stream.Bytes()

	// Cut the stream mid-way through the last frame: the first two frames
	// drain without blocking, the third is untouched until the source
	// yields the rest.
	cut := len(full) - 40
	br := bufio.NewReaderSize(&halfFeeder{data: full, cut: cut}, 1<<10)
	first, err := ReadFrame(br, nil, testMaxFrame) // blocking read primes the buffer
	if err != nil || !bytes.Equal(first, payloads[0]) {
		t.Fatalf("priming read = %q, %v", first, err)
	}
	buf := first
	got, ok, err := ReadFrameBuffered(br, buf, testMaxFrame)
	if err != nil || !ok || !bytes.Equal(got, payloads[1]) {
		t.Fatalf("second frame = %q, ok=%v, %v", got, ok, err)
	}
	buf = got
	if _, ok, err := ReadFrameBuffered(br, buf, testMaxFrame); ok || err != nil {
		t.Fatalf("partial third frame consumed (ok=%v, err=%v)", ok, err)
	}
	// A blocking ReadFrame completes the cut frame.
	got, err = ReadFrame(br, buf, testMaxFrame)
	if err != nil || !bytes.Equal(got, payloads[2]) {
		t.Fatalf("third frame = %q, %v", got, err)
	}
	if _, ok, err := ReadFrameBuffered(br, got, testMaxFrame); ok || err != nil {
		t.Fatalf("drained stream yielded a frame (ok=%v, err=%v)", ok, err)
	}

	// Oversized header: reported without consuming it, exactly like
	// ReadFrame would.
	var over bytes.Buffer
	if err := WriteFrame(&over, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	br = bufio.NewReaderSize(&over, 1<<10)
	if _, err := br.Peek(4); err != nil { // prime the buffer without consuming
		t.Fatal(err)
	}
	if _, ok, err := ReadFrameBuffered(br, nil, 16); ok || !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized frame: ok=%v, err=%v, want ErrOversized", ok, err)
	}
}

func TestFrameBufferReuse(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 64)
	got, err := ReadFrame(&stream, buf, testMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("frame body not read into the provided buffer")
	}
}

// TestFrameTruncatedHeader covers a connection dropped mid-length-prefix:
// every partial header length must surface ErrTruncated, not io.EOF and not
// a panic.
func TestFrameTruncatedHeader(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := stream.Bytes()
	for cut := 1; cut < frameHeaderLen; cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), nil, testMaxFrame)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("header cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestFrameTruncatedBody covers a sender crashing mid-broadcast: the length
// prefix arrived but the body was cut short at every possible offset.
func TestFrameTruncatedBody(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	full := stream.Bytes()
	for cut := frameHeaderLen; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), nil, testMaxFrame)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("body cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestFrameOversized asserts that a hostile or corrupt length prefix is
// rejected before any body byte is read, so no allocation is sized by
// attacker-controlled input.
func TestFrameOversized(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, bytes.Repeat([]byte{1}, testMaxFrame+1)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&stream, nil, testMaxFrame)
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
	// A length prefix with the high bytes set (claims ~4 GiB) must fail the
	// same way even though no such body exists.
	_, err = ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), nil, testMaxFrame)
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
}

// TestFrameGarbageNeverPanics feeds random byte streams to ReadFrame; every
// outcome must be a clean error or a well-formed frame.
func TestFrameGarbageNeverPanics(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		raw := make([]byte, rng.Intn(64))
		rng.Read(raw)
		r := bytes.NewReader(raw)
		var buf []byte
		for {
			frame, err := ReadFrame(r, buf, 32)
			if err != nil {
				break
			}
			buf = frame
		}
	}
}

func TestReaderRest(t *testing.T) {
	t.Parallel()
	var w Writer
	w.Byte(9)
	w.Uvarint(300)
	tail := []byte{1, 2, 3}
	for _, b := range tail {
		w.Byte(b)
	}
	r := NewReader(w.Bytes())
	r.Byte()
	r.Uvarint()
	if got := r.Rest(); !bytes.Equal(got, tail) {
		t.Fatalf("rest = %v, want %v", got, tail)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close after rest: %v", err)
	}
	// Rest after an error stays nil and preserves the error.
	r2 := NewReader([]byte{0x80}) // truncated uvarint
	r2.Uvarint()
	if got := r2.Rest(); got != nil {
		t.Fatalf("rest after error = %v", got)
	}
	if !errors.Is(r2.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r2.Err())
	}
}
