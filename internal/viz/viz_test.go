package viz

import (
	"strings"
	"testing"

	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/tree"
)

func makeView(t *testing.T, n int) *core.View {
	t.Helper()
	topo := tree.NewTopology(n)
	return core.NewView(topo, ids.Sequential(n))
}

func TestTreeRendersRootBalls(t *testing.T) {
	t.Parallel()
	v := makeView(t, 4)
	out := Tree(v)
	if !strings.Contains(out, "[1..4] ●●●●") {
		t.Fatalf("missing root with four balls:\n%s", out)
	}
	if !strings.Contains(out, "[name 1]") || !strings.Contains(out, "[name 4]") {
		t.Fatalf("missing leaf labels:\n%s", out)
	}
}

func TestTreeRendersPlacedBalls(t *testing.T) {
	t.Parallel()
	v := makeView(t, 4)
	topo := v.Topology()
	for i := 0; i < 4; i++ {
		v.SetNode(i, topo.Leaf(i))
	}
	out := Tree(v)
	if strings.Contains(out, "[1..4] ●") {
		t.Fatalf("root should be empty:\n%s", out)
	}
	for _, want := range []string{"[name 1] ●", "[name 2] ●", "[name 3] ●", "[name 4] ●"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestTreeTooLarge(t *testing.T) {
	t.Parallel()
	v := makeView(t, MaxRenderableN*2)
	if out := Tree(v); !strings.Contains(out, "too large") {
		t.Fatalf("large tree not summarized: %q", out)
	}
}

func TestDepthBars(t *testing.T) {
	t.Parallel()
	v := makeView(t, 8)
	topo := v.Topology()
	v.SetNode(0, topo.Leaf(0))
	v.SetNode(1, topo.Leaf(5))
	out := DepthBars(v)
	if !strings.Contains(out, "depth  0") || !strings.Contains(out, "depth  3") {
		t.Fatalf("bars missing depths:\n%s", out)
	}
}

func TestDepthBarsEmpty(t *testing.T) {
	t.Parallel()
	v := makeView(t, 2)
	v.Remove(0)
	v.Remove(1)
	if out := DepthBars(v); !strings.Contains(out, "empty") {
		t.Fatalf("empty view not flagged: %q", out)
	}
}

func TestTreeArity(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopologyArity(9, 3)
	v := core.NewView(topo, ids.Sequential(9))
	out := Tree(v)
	if !strings.Contains(out, "[1..9] ●●●●●●●●●") {
		t.Fatalf("arity-3 root missing:\n%s", out)
	}
	if !strings.Contains(out, "[1..3]") || !strings.Contains(out, "[7..9]") {
		t.Fatalf("arity-3 children missing:\n%s", out)
	}
}
