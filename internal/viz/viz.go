// Package viz renders small virtual trees as ASCII for cmd/blsim traces —
// the textual equivalent of the paper's Figures 1, 2 and 4.
package viz

import (
	"fmt"
	"strings"

	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/tree"
)

// MaxRenderableN caps tree rendering; larger systems are summarized.
const MaxRenderableN = 64

// Tree renders the view's tree with ball occupancy, one node per line:
//
//	[0..7] ●●
//	├─[0..3]
//	│ ├─[0..1] ...
//
// Each ● is a ball parked exactly at that node; leaves show their name.
func Tree(v *core.View) string {
	topo := v.Topology()
	if topo.N() > MaxRenderableN {
		return fmt.Sprintf("(tree with %d leaves too large to render)\n", topo.N())
	}
	occ := v.Occupancy()
	var sb strings.Builder
	var walk func(node tree.Node, prefix string, last bool)
	walk = func(node tree.Node, prefix string, last bool) {
		connector, childPrefix := "├─", prefix+"│ "
		if last {
			connector, childPrefix = "└─", prefix+"  "
		}
		if node == topo.Root() {
			connector, childPrefix = "", ""
		} else {
			sb.WriteString(prefix)
			sb.WriteString(connector)
		}
		if topo.IsLeaf(node) {
			fmt.Fprintf(&sb, "[name %d]", topo.LeafRank(node)+1)
		} else {
			lo := topo.LeafRank(leftmostLeaf(topo, node))
			fmt.Fprintf(&sb, "[%d..%d]", lo+1, lo+topo.Leaves(node))
		}
		if at := occ.At(node); at > 0 {
			sb.WriteString(" ")
			sb.WriteString(strings.Repeat("●", at))
		}
		sb.WriteString("\n")
		kids := topo.Children(node)
		for i, child := range kids {
			walk(child, childPrefix, i == len(kids)-1)
		}
	}
	walk(topo.Root(), "", true)
	return sb.String()
}

func leftmostLeaf(topo *tree.Topology, node tree.Node) tree.Node {
	for !topo.IsLeaf(node) {
		node = topo.Left(node)
	}
	return node
}

// DepthBars renders a per-depth ball histogram for systems too large for
// the full tree.
func DepthBars(v *core.View) string {
	topo := v.Topology()
	counts := make([]int, topo.MaxDepth()+1)
	total := 0
	for i := 0; i < v.Universe(); i++ {
		if v.Present(i) {
			counts[topo.Depth(v.Node(i))]++
			total++
		}
	}
	if total == 0 {
		return "(empty view)\n"
	}
	var sb strings.Builder
	for d, c := range counts {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("█", 1+c*40/total)
		fmt.Fprintf(&sb, "depth %2d %s %d\n", d, bar, c)
	}
	return sb.String()
}
