package ballsintoleaves

import (
	"fmt"

	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/tree"
)

// Message is a payload received from a peer during one synchronous round.
type Message struct {
	// From is the sender's original identifier.
	From uint64
	// Payload is the sender's broadcast for the round. The protocol decodes
	// it during Deliver and never retains it, so the slice may alias a
	// receive buffer that is reused afterwards.
	Payload []byte
}

// Protocol is the per-process Balls-into-Leaves state machine, exposed for
// integration with a real transport. The caller is responsible for
// providing lock-step synchronous rounds:
//
//	for round := 1; !p.Done(); round++ {
//	    payload := p.Send(round)
//	    transport.Broadcast(payload)              // to all peers and self
//	    msgs := transport.CollectRound(round)     // all deliveries
//	    p.Deliver(round, msgs)
//	}
//	name, _ := p.Decided()
//
// Round 1 is the membership exchange; round 2k is phase k's candidate-path
// broadcast and round 2k+1 its position broadcast.
//
// The round-driving contract, which internal/transport implements over
// in-process channels and over TCP (cmd/blserve) and which
// examples/transport demonstrates:
//
//   - Lock-step rounds. Rounds are numbered from 1. Every live process
//     broadcasts exactly once per round, and no process receives round
//     r+1 traffic before it has delivered round r.
//
//   - Payload reuse. The slice returned by Send aliases an internal
//     encoding buffer that is overwritten by the next Send; a transport
//     that queues or retains payloads must copy them first. Symmetrically,
//     Deliver never retains message payloads, so the transport may reuse
//     its receive buffers between rounds.
//
//   - Self-delivery. Each round's deliveries must include the process's
//     own broadcast; the algorithm counts itself like any other ball.
//
//   - Crash semantics. A process from which no message arrives in a round
//     is removed from its peers' views, exactly as a crashed process in
//     the paper's model — there is no separate failure-notification
//     channel, silence is the signal. Consequently the transport must
//     deliver every correct process's broadcast to every process each
//     round; losing a correct process's message is indistinguishable from
//     crashing it. Delivering a crashing process's final broadcast to only
//     a subset of recipients is tolerated by construction — that is the
//     failure model (§3) the algorithm is designed for — and malformed
//     payloads are treated as the sender having crashed.
type Protocol struct {
	ball *core.Ball
}

// NewProtocol constructs the state machine for one process, to be driven
// under the round contract documented on Protocol.
//
// All participating processes must use the same n and seed and distinct
// non-zero ids; names decided are unique among processes that do not
// crash. The variant selects the path strategy (BallsIntoLeaves,
// EarlyTerminating, RankDescent or DeterministicLevelDescent; NaiveRandom
// is not a tree protocol and is not supported here). Executions are
// deterministic in (n, seed, ids, variant) and the delivery schedule, so a
// networked run can be replayed — and is pinned by integration tests —
// against the simulation engines.
func NewProtocol(n int, seed uint64, id uint64, variant Algorithm) (*Protocol, error) {
	if n < 1 {
		return nil, fmt.Errorf("ballsintoleaves: n must be >= 1, got %d", n)
	}
	if id == 0 {
		return nil, fmt.Errorf("ballsintoleaves: id must be non-zero")
	}
	if variant == 0 {
		variant = BallsIntoLeaves
	}
	if variant == NaiveRandom {
		return nil, fmt.Errorf("ballsintoleaves: NaiveRandom is not supported by NewProtocol")
	}
	cfg := core.Config{N: n, Seed: seed, Strategy: variant.strategy()}
	ball, err := core.NewBall(cfg, tree.NewTopology(n), proto.ID(id))
	if err != nil {
		return nil, err
	}
	return &Protocol{ball: ball}, nil
}

// ID returns the process's original identifier.
func (p *Protocol) ID() uint64 { return uint64(p.ball.ID()) }

// Send returns the payload to broadcast in the given round (rounds are
// numbered from 1). The returned slice aliases a buffer that the next Send
// overwrites; transports that queue it must copy.
func (p *Protocol) Send(round int) []byte { return p.ball.Send(round) }

// Deliver hands the process every message received in the round, in any
// order. The process's own broadcast must be included. Payloads are
// decoded synchronously and not retained; a malformed payload is treated
// as the sender having crashed.
func (p *Protocol) Deliver(round int, msgs []Message) {
	converted := make([]proto.Message, len(msgs))
	for i, m := range msgs {
		converted[i] = proto.Message{From: proto.ID(m.From), Payload: m.Payload}
	}
	p.ball.Deliver(round, converted)
}

// Decided reports the decided name (in 1..n) once the process has reached
// a leaf.
func (p *Protocol) Decided() (name int, ok bool) { return p.ball.Decided() }

// Done reports whether the process has halted: every process it knows of
// holds a name, and no further rounds are needed.
func (p *Protocol) Done() bool { return p.ball.Done() }
