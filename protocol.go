package ballsintoleaves

import (
	"fmt"

	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/tree"
)

// Message is a payload received from a peer during one synchronous round.
type Message struct {
	// From is the sender's original identifier.
	From uint64
	// Payload is the sender's broadcast for the round.
	Payload []byte
}

// Protocol is the per-process Balls-into-Leaves state machine, exposed for
// integration with a real transport. The caller is responsible for
// providing lock-step synchronous rounds:
//
//	for round := 1; !p.Done(); round++ {
//	    payload := p.Send(round)
//	    transport.Broadcast(payload)              // to all peers and self
//	    msgs := transport.CollectRound(round)     // all deliveries
//	    p.Deliver(round, msgs)
//	}
//	name, _ := p.Decided()
//
// Round 1 is the membership exchange; round 2k is phase k's candidate-path
// broadcast and round 2k+1 its position broadcast. A process that misses a
// round is treated as crashed by its peers, exactly as in the paper's
// model; the transport must therefore deliver every correct process's
// broadcast to every process each round (delivering a crashing process's
// final broadcast to only some recipients is tolerated by construction —
// that is the failure model the algorithm is designed for).
type Protocol struct {
	ball *core.Ball
}

// NewProtocol constructs the state machine for one process.
//
// All participating processes must use the same n and seed and distinct
// non-zero ids; names decided are unique among processes that do not
// crash. The variant selects the path strategy (BallsIntoLeaves,
// EarlyTerminating, RankDescent or DeterministicLevelDescent; NaiveRandom
// is not a tree protocol and is not supported here).
func NewProtocol(n int, seed uint64, id uint64, variant Algorithm) (*Protocol, error) {
	if n < 1 {
		return nil, fmt.Errorf("ballsintoleaves: n must be >= 1, got %d", n)
	}
	if id == 0 {
		return nil, fmt.Errorf("ballsintoleaves: id must be non-zero")
	}
	if variant == 0 {
		variant = BallsIntoLeaves
	}
	if variant == NaiveRandom {
		return nil, fmt.Errorf("ballsintoleaves: NaiveRandom is not supported by NewProtocol")
	}
	cfg := core.Config{N: n, Seed: seed, Strategy: variant.strategy()}
	ball, err := core.NewBall(cfg, tree.NewTopology(n), proto.ID(id))
	if err != nil {
		return nil, err
	}
	return &Protocol{ball: ball}, nil
}

// ID returns the process's original identifier.
func (p *Protocol) ID() uint64 { return uint64(p.ball.ID()) }

// Send returns the payload to broadcast in the given round (rounds are
// numbered from 1). The returned slice is reused across rounds; transports
// that queue it must copy.
func (p *Protocol) Send(round int) []byte { return p.ball.Send(round) }

// Deliver hands the process every message received in the round, in any
// order. The process's own broadcast must be included.
func (p *Protocol) Deliver(round int, msgs []Message) {
	converted := make([]proto.Message, len(msgs))
	for i, m := range msgs {
		converted[i] = proto.Message{From: proto.ID(m.From), Payload: m.Payload}
	}
	p.ball.Deliver(round, converted)
}

// Decided reports the decided name (in 1..n) once the process has reached
// a leaf.
func (p *Protocol) Decided() (name int, ok bool) { return p.ball.Decided() }

// Done reports whether the process has halted: every process it knows of
// holds a name, and no further rounds are needed.
func (p *Protocol) Done() bool { return p.ball.Done() }
