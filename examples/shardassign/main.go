// Shard assignment: the paper's motivating scenario — n fault-prone
// servers must assign themselves one-to-one to n shards, with servers
// crashing mid-protocol.
//
// This example runs the real concurrent engine (one goroutine per server,
// channels as network links) and injects random crashes with partial
// delivery of the victims' final broadcasts — the paper's failure model.
// The surviving servers still end up with unique shards.
//
// Run with:
//
//	go run ./examples/shardassign
package main

import (
	"fmt"
	"log"
	"sort"

	bil "ballsintoleaves"
)

const (
	servers = 32
	crashes = 8
)

func main() {
	// Give the servers recognizable identifiers.
	serverIDs := make([]uint64, servers)
	for i := range serverIDs {
		serverIDs[i] = uint64(1000 + 7*i)
	}

	res, err := bil.Rename(servers,
		bil.WithIDs(serverIDs),
		bil.WithSeed(7),
		bil.WithEngine(bil.ConcurrentEngine), // goroutine per server
		bil.WithCrashes(bil.RandomCrashes(crashes, 9, 42)),
	)
	if err != nil {
		log.Fatal(err)
	}

	crashed := make(map[uint64]bool, len(res.Crashed))
	for _, id := range res.Crashed {
		crashed[id] = true
	}

	fmt.Printf("cluster of %d servers, %d crashed mid-protocol\n", servers, len(res.Crashed))
	fmt.Printf("assignment completed in %d synchronous rounds\n\n", res.Rounds)
	fmt.Println("server  shard   status")
	for _, id := range serverIDs {
		if crashed[id] {
			fmt.Printf("s-%d  —       crashed\n", id)
			continue
		}
		fmt.Printf("s-%d  #%-5d  ok (decided round %d)\n", id, res.Names[id], res.DecisionRound[id])
	}

	// Verify one-to-one: every surviving server holds a distinct shard.
	shards := make([]int, 0, len(res.Names))
	for _, shard := range res.Names {
		shards = append(shards, shard)
	}
	sort.Ints(shards)
	for i := 1; i < len(shards); i++ {
		if shards[i] == shards[i-1] {
			log.Fatalf("DUPLICATE shard %d — uniqueness violated!", shards[i])
		}
	}
	fmt.Printf("\n%d surviving servers hold %d distinct shards — tight renaming holds under crashes\n",
		len(res.Names), len(shards))
}
