// Example namesvc: the long-lived name-allocation service in-process —
// epoch-batched acquires over the renaming machinery, a sharded namespace
// ledger with release and reuse, and the determinism guarantee (replaying
// the same trace reproduces the same ledger digest).
//
// Run with: go run ./examples/namesvc
package main

import (
	"fmt"
	"log"

	"ballsintoleaves/internal/namesvc"
)

func main() {
	// Two independent shards of 8 names each; every epoch's assignment is
	// one Balls-into-Leaves renaming instance over the shard's batch.
	run := func() (*namesvc.Service, uint64) {
		svc, err := namesvc.New(namesvc.Config{Shards: 2, ShardCap: 8, Seed: 42, Journal: true})
		if err != nil {
			log.Fatal(err)
		}

		// Ten clients arrive; closing the epochs grants each a unique name
		// from its shard's free pool.
		for client := uint64(1); client <= 10; client++ {
			if _, err := svc.Acquire(client, nil); err != nil {
				log.Fatal(err)
			}
		}
		grants, err := svc.CloseEpochs()
		if err != nil {
			log.Fatal(err)
		}
		byClient := make(map[uint64]namesvc.Grant, len(grants))
		for _, g := range grants {
			byClient[g.Client] = g
		}

		// Long-lived behaviour: releases return names for reuse; the next
		// epoch's batch draws on the freed slice of the namespace.
		for client := uint64(1); client <= 4; client++ {
			g := byClient[client]
			if err := svc.Release(g.Client, g.Name); err != nil {
				log.Fatal(err)
			}
		}
		for client := uint64(100); client <= 103; client++ {
			if _, err := svc.Acquire(client, nil); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := svc.CloseEpochs(); err != nil {
			log.Fatal(err)
		}
		return svc, svc.Digest()
	}

	svc, digest := run()
	st := svc.Stats()
	fmt.Printf("after two epoch waves: %d assigned, %d free, %d epochs, %d grants, %d releases\n",
		st.Assigned, st.Free, st.Epochs, st.Grants, st.Releases)
	for s := 0; s < svc.Shards(); s++ {
		fmt.Printf("shard %d journal:\n", s)
		for _, e := range svc.ShardJournal(s) {
			fmt.Printf("  epoch %d: %-7v client %-3d -> local name %d\n", e.Epoch, e.Op, e.Client, e.Name)
		}
	}

	// Determinism: an identical (seed, trace, shards) replay reproduces the
	// assignment ledger bit for bit.
	_, again := run()
	fmt.Printf("ledger digest %016x, replay %016x, identical: %v\n", digest, again, digest == again)
}
