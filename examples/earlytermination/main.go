// Early termination: the paper's §6 extension terminates in O(1) rounds
// when nothing fails and O(log log f) rounds with f failures — compare the
// three regimes side by side.
//
// Run with:
//
//	go run ./examples/earlytermination
package main

import (
	"fmt"
	"log"

	bil "ballsintoleaves"
)

const n = 4096

func run(algo bil.Algorithm, plan bil.CrashPlan, seed uint64) int {
	res, err := bil.Rename(n,
		bil.WithAlgorithm(algo),
		bil.WithSeed(seed),
		bil.WithCrashes(plan))
	if err != nil {
		log.Fatal(err)
	}
	return res.Rounds
}

func main() {
	fmt.Printf("n = %d processes; rounds to rename, by algorithm and failure count\n\n", n)
	fmt.Println("failures f  early-terminating  balls-into-leaves  level-descent (det.)")

	for _, f := range []int{0, 1, 16, 256, 1024} {
		plan := bil.NoCrashes()
		if f > 0 {
			// All crashes strike the membership round with random partial
			// delivery — the worst case of Theorem 4's analysis.
			plan = bil.RandomCrashes(f, 1, uint64(f))
		}
		early := run(bil.EarlyTerminating, plan, 3)
		random := run(bil.BallsIntoLeaves, plan, 3)
		det := run(bil.DeterministicLevelDescent, plan, 3)
		fmt.Printf("%10d  %17d  %17d  %21d\n", f, early, random, det)
	}

	fmt.Println(`
reading the table:
  - early-terminating, f=0: exactly 3 rounds — Theorem 3's deterministic O(1);
  - early-terminating, f>0: grows like O(log log f) — Theorem 4;
  - balls-into-leaves: O(log log n) regardless of f — Theorem 2;
  - level-descent: the deterministic 2*log2(n)+1 — what the paper improves on.`)
}
