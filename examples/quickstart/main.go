// Quickstart: rename 64 processes in a handful of synchronous rounds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	bil "ballsintoleaves"
)

func main() {
	// 64 processes with random 64-bit identifiers (derived from the seed)
	// assign themselves the names 1..64, one-to-one, by simulating the
	// Balls-into-Leaves protocol.
	res, err := bil.Rename(64, bil.WithSeed(2026))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("renamed %d processes in %d synchronous rounds (%d phases)\n",
		res.N, res.Rounds, res.Phases)
	fmt.Printf("network traffic: %d messages, %d bytes\n\n", res.Messages, res.Bytes)

	// Print the first few assignments in name order.
	type row struct {
		id   uint64
		name int
	}
	rows := make([]row, 0, len(res.Names))
	for id, name := range res.Names {
		rows = append(rows, row{id, name})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Println("name  original id")
	for _, r := range rows[:8] {
		fmt.Printf("%4d  %016x\n", r.name, r.id)
	}
	fmt.Printf("...   (%d more)\n", len(rows)-8)

	// The paper's headline: rounds grow doubly logarithmically. Watch n
	// grow by 256x while rounds barely move.
	fmt.Println("\nscaling (failure-free, same seed):")
	for _, n := range []int{256, 4096, 65536} {
		r, err := bil.Rename(n, bil.WithSeed(2026))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%-6d rounds=%d\n", n, r.Rounds)
	}
}
