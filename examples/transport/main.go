// Transport integration: run the Balls-into-Leaves state machine over the
// repository's real transport layer via the NewProtocol API.
//
// Each process runs in its own goroutine and talks only to its
// transport.Transport endpoint — here the in-process loopback, but the
// identical loop drives the TCP transport (see cmd/blserve, or `go run
// ./cmd/blserve -h` for running this on real sockets). The loopback's
// fault injection crashes one process mid-broadcast so that its final
// message reaches only alternating peers — the paper's exact failure
// model. The survivors rename around the crash.
//
// Run with:
//
//	go run ./examples/transport
package main

import (
	"fmt"
	"log"
	"sync"

	bil "ballsintoleaves"
	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/transport"
)

const (
	n          = 8
	seed       = 99
	crashRound = 3 // the victim crashes while broadcasting this round
)

func main() {
	peerIDs := make([]proto.ID, n)
	for i := range peerIDs {
		peerIDs[i] = proto.ID(500 + i)
	}
	victim := peerIDs[0]

	// The loopback hub provides lock-step rounds with the simulation
	// engines' exact crash semantics; the scripted adversary kills the
	// victim mid-broadcast with alternating partial delivery.
	scripted, err := adversary.NewScripted(crashRound, victim)
	if err != nil {
		log.Fatal(err)
	}
	hub, err := transport.NewLoopback(peerIDs, transport.NetConfig{Adversary: scripted})
	if err != nil {
		log.Fatal(err)
	}

	// One goroutine per process: the round-driving loop documented on
	// NewProtocol, with the transport standing in for the network.
	var wg sync.WaitGroup
	for _, id := range peerIDs {
		p, err := bil.NewProtocol(n, seed, uint64(id), bil.BallsIntoLeaves)
		if err != nil {
			log.Fatal(err)
		}
		ep, err := hub.Endpoint(id)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id proto.ID) {
			defer wg.Done()
			drive(ep, p)
		}(id)
	}
	wg.Wait()

	sum := hub.Summary()
	fmt.Printf("all surviving processes halted after round %d\n\n", sum.Rounds)
	for _, d := range sum.Decisions {
		fmt.Printf("process %d: decided name %d (round %d)\n", uint64(d.ID), d.Name, d.Round)
	}
	for _, id := range sum.Crashed {
		fmt.Printf("process %d: crashed\n", uint64(id))
	}
	fmt.Printf("\n%d messages, %d bytes on the wire\n", sum.Messages, sum.Bytes)
	fmt.Println("\nany transport providing lock-step broadcast rounds (with self-delivery)")
	fmt.Println("can host the protocol; partial delivery of a crashing sender is tolerated")
}

// drive is the per-process loop: broadcast, collect, deliver — until the
// state machine halts or the transport reports this process crashed.
// Payload buffers returned by Send are reused across rounds; Broadcast
// consumes them synchronously, so no copy is needed here.
func drive(ep transport.Transport, p *bil.Protocol) {
	var decidedRound int
	for round := 1; ; round++ {
		if round > 100 {
			log.Fatal("protocol did not terminate")
		}
		if err := ep.Broadcast(round, p.Send(round)); err != nil {
			return // crashed mid-broadcast
		}
		rd, err := ep.Collect(round)
		if err != nil {
			return // crashed: by the model's rules, fall silent forever
		}
		msgs := make([]bil.Message, len(rd.Msgs))
		for i, m := range rd.Msgs {
			msgs[i] = bil.Message{From: uint64(m.From), Payload: m.Payload}
		}
		p.Deliver(round, msgs)
		name, ok := p.Decided()
		if ok && decidedRound == 0 {
			decidedRound = round
		}
		if p.Done() {
			ep.Halt(transport.Halt{Round: round, Decided: ok, Name: name, DecidedRound: decidedRound})
			return
		}
	}
}
