// Transport integration: run the Balls-into-Leaves state machine over your
// own network layer via the NewProtocol API.
//
// The example acts as the transport itself: it drives lock-step rounds,
// broadcasts every process's payload (including back to the sender), and
// crashes one process mid-broadcast so that its final message reaches only
// half the peers — the paper's exact failure model. The survivors rename
// around the crash.
//
// Run with:
//
//	go run ./examples/transport
package main

import (
	"fmt"
	"log"

	bil "ballsintoleaves"
)

const (
	n          = 8
	seed       = 99
	crashRound = 3 // the victim crashes while broadcasting this round
)

func main() {
	peerIDs := make([]uint64, n)
	procs := make(map[uint64]*bil.Protocol, n)
	for i := range peerIDs {
		id := uint64(500 + i)
		peerIDs[i] = id
		p, err := bil.NewProtocol(n, seed, id, bil.BallsIntoLeaves)
		if err != nil {
			log.Fatal(err)
		}
		procs[id] = p
	}
	victim := peerIDs[0]
	alive := make(map[uint64]bool, n)
	for _, id := range peerIDs {
		alive[id] = true
	}

	for round := 1; ; round++ {
		if round > 100 {
			log.Fatal("protocol did not terminate")
		}
		// Send half: collect every live process's broadcast. Payload
		// buffers are reused by the protocol, so a transport must copy.
		payloads := make(map[uint64][]byte)
		for _, id := range peerIDs {
			if !alive[id] || procs[id].Done() {
				continue
			}
			raw := procs[id].Send(round)
			cp := make([]byte, len(raw))
			copy(cp, raw)
			payloads[id] = cp
		}

		// Failure injection: the victim crashes during its broadcast in
		// crashRound — only peers with odd index still receive its final
		// message. Afterwards it is silent forever.
		partial := map[uint64]bool{}
		if round == crashRound && alive[victim] {
			alive[victim] = false
			for i, id := range peerIDs {
				if i%2 == 1 {
					partial[id] = true
				}
			}
			fmt.Printf("round %d: process %d crashes mid-broadcast; final message reaches %d of %d peers\n",
				round, victim, len(partial), n-1)
		}

		// Deliver half: every live process receives the round's messages.
		done := true
		for _, id := range peerIDs {
			if !alive[id] || procs[id].Done() {
				continue
			}
			var msgs []bil.Message
			for from, payload := range payloads {
				if from == victim && round == crashRound && !partial[id] && id != victim {
					continue // this peer missed the victim's final broadcast
				}
				msgs = append(msgs, bil.Message{From: from, Payload: payload})
			}
			procs[id].Deliver(round, msgs)
			if !procs[id].Done() {
				done = false
			}
		}
		if done {
			fmt.Printf("all surviving processes halted after round %d\n\n", round)
			break
		}
	}

	for _, id := range peerIDs {
		if !alive[id] {
			fmt.Printf("process %d: crashed\n", id)
			continue
		}
		name, ok := procs[id].Decided()
		if !ok {
			log.Fatalf("process %d never decided", id)
		}
		fmt.Printf("process %d: decided name %d\n", id, name)
	}
	fmt.Println("\nany transport providing lock-step broadcast rounds (with self-delivery)")
	fmt.Println("can host the protocol; partial delivery of a crashing sender is tolerated")
}
