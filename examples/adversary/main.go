// Adversary showdown: the §6 "splitter" pattern — a single crash that
// forces up to n/2 collisions against deterministic rank-indexed choices —
// and how each algorithm absorbs it.
//
// Run with:
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	bil "ballsintoleaves"
)

const n = 1024

func main() {
	fmt.Printf("the splitter: the lowest-labelled of %d processes crashes during the\n", n)
	fmt.Println("membership round, delivering its announcement to every second peer.")
	fmt.Println("half the survivors now count one extra participant: every rank-indexed")
	fmt.Println("choice is off by one between the two halves.")
	fmt.Println()

	for _, algo := range []bil.Algorithm{
		bil.EarlyTerminating,
		bil.BallsIntoLeaves,
		bil.DeterministicLevelDescent,
	} {
		clean, err := bil.Rename(n, bil.WithAlgorithm(algo), bil.WithSeed(5))
		if err != nil {
			log.Fatal(err)
		}
		hit, err := bil.Rename(n, bil.WithAlgorithm(algo), bil.WithSeed(5),
			bil.WithCrashes(bil.SplitterCrash(1)), bil.WithPhaseMetrics())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28v failure-free %2d rounds | splitter %2d rounds", algo, clean.Rounds, hit.Rounds)
		if len(hit.PhaseStats) > 0 {
			stuck := hit.PhaseStats[0].Balls - hit.PhaseStats[0].AtLeaves
			fmt.Printf(" | balls displaced after phase 1: %d", stuck)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("the early-terminating variant pays the collisions (its first phase is")
	fmt.Println("rank-indexed) yet recovers within O(log log f) extra rounds; the fully")
	fmt.Println("randomized algorithm barely notices — randomization is what defuses the")
	fmt.Println("adversary's knowledge of the rank structure.")
}
