package ballsintoleaves

import (
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/sim"
)

// Result is the outcome of one simulated execution.
type Result struct {
	// N is the number of processes (and names).
	N int
	// Algorithm and Seed echo the run's configuration.
	Algorithm Algorithm
	Seed      uint64
	// Rounds is the number of synchronous rounds until every surviving
	// process halted; Phases is the number of two-round protocol phases
	// (tree algorithms only; equals Rounds for NaiveRandom).
	Rounds int
	Phases int
	// Names maps each correct process's original id to its decided name in
	// 1..N. Names are unique (tight renaming).
	Names map[uint64]int
	// DecisionRound maps each correct process's id to the round in which
	// it decided.
	DecisionRound map[uint64]int
	// Crashed lists the processes the adversary crashed, in crash order
	// where the engine tracks it.
	Crashed []uint64
	// Messages and Bytes count network deliveries, excluding a process
	// hearing its own broadcast.
	Messages int64
	Bytes    int64
	// PhaseStats holds per-phase tree statistics when WithPhaseMetrics was
	// set (FastEngine only).
	PhaseStats []PhaseStat
}

// PhaseStat is the public mirror of one per-phase snapshot of the canonical
// tree: how contended the tree still is and how far the balls have spread.
type PhaseStat struct {
	Phase           int
	Round           int
	Balls           int
	AtLeaves        int
	MaxBallsAtNode  int
	BusiestPathLoad int
	DepthHistogram  []int
}

// newResult allocates a Result shell for the given options.
func newResult(o *options, rounds, phases int) *Result {
	return &Result{
		N:             o.n,
		Algorithm:     o.algorithm,
		Seed:          o.seed,
		Rounds:        rounds,
		Phases:        phases,
		Names:         make(map[uint64]int, o.n),
		DecisionRound: make(map[uint64]int, o.n),
	}
}

// resultFromCohort converts a fast-simulator result.
func resultFromCohort(res core.Result, o *options) *Result {
	out := newResult(o, res.Rounds, res.Phases)
	for _, d := range res.Decisions {
		out.Names[uint64(d.ID)] = d.Name
		out.DecisionRound[uint64(d.ID)] = d.Round
	}
	out.Messages = res.Messages
	out.Bytes = res.Bytes
	if res.Crashes > 0 {
		out.Crashed = make([]uint64, 0, res.Crashes)
		decided := make(map[uint64]bool, len(res.Decisions))
		for _, d := range res.Decisions {
			decided[uint64(d.ID)] = true
		}
		for _, id := range o.ids {
			if !decided[uint64(id)] {
				out.Crashed = append(out.Crashed, uint64(id))
			}
		}
	}
	if res.Metrics != nil {
		for _, s := range res.Metrics.PerPhase {
			out.PhaseStats = append(out.PhaseStats, PhaseStat{
				Phase:           s.Phase,
				Round:           s.Round,
				Balls:           s.Balls,
				AtLeaves:        s.AtLeaves,
				MaxBallsAtNode:  s.MaxAtNode,
				BusiestPathLoad: s.BusiestPathLoad,
				DepthHistogram:  s.DepthHist,
			})
		}
	}
	return out
}

// resultFromEngine converts a reference/concurrent engine result.
func resultFromEngine(res sim.Result, o *options) *Result {
	phases := 0
	if o.algorithm != NaiveRandom && res.Rounds > 0 {
		phases = (res.Rounds - 1) / 2
	} else {
		phases = res.Rounds
	}
	out := newResult(o, res.Rounds, phases)
	for _, d := range res.Decisions {
		out.Names[uint64(d.ID)] = d.Name
		out.DecisionRound[uint64(d.ID)] = d.Round
	}
	for _, id := range res.Crashed {
		out.Crashed = append(out.Crashed, uint64(id))
	}
	out.Messages = res.Messages
	out.Bytes = res.Bytes
	return out
}
