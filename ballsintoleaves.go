// Package ballsintoleaves is a complete implementation of the
// Balls-into-Leaves algorithm — randomized tight renaming in synchronous
// message-passing systems in O(log log n) communication rounds with high
// probability (Alistarh, Denysyuk, Rodrigues, Shavit, PODC 2014) — together
// with its early-terminating extension, the deterministic and randomized
// baselines it is measured against, crash-failure adversaries, and the
// simulation engines used to reproduce every quantitative claim of the
// paper (see DESIGN.md and EXPERIMENTS.md).
//
// # The problem
//
// n processes with distinct identifiers from an unbounded namespace must
// each decide a unique name in 1..n (tight renaming), communicating by
// synchronous broadcast while up to n-1 of them may crash — possibly
// mid-broadcast, with the adversary choosing which recipients still receive
// the final message.
//
// # Quick start
//
//	res, err := ballsintoleaves.Rename(64)
//	if err != nil { ... }
//	for id, name := range res.Names {
//	    fmt.Printf("process %x -> name %d\n", id, name)
//	}
//	fmt.Printf("finished in %d rounds\n", res.Rounds)
//
// Runs are deterministic: the same options always produce the same names,
// rounds, and message counts. Use WithSeed to vary executions and
// WithCrashes to inject adversarial failures:
//
//	res, _ := ballsintoleaves.Rename(1024,
//	    ballsintoleaves.WithSeed(7),
//	    ballsintoleaves.WithAlgorithm(ballsintoleaves.EarlyTerminating),
//	    ballsintoleaves.WithCrashes(ballsintoleaves.RandomCrashes(100, 9, 3)))
//
// # Running on a real network
//
// NewProtocol exposes the per-process state machine directly, so the
// algorithm can run over any transport that provides lock-step rounds:
// call Send to obtain the round's broadcast, deliver every received
// message via Deliver, and read Decided/Done. The full round-driving
// contract (payload reuse, self-delivery, crash semantics) is documented
// on Protocol.
//
// The repository ships that transport: internal/transport provides an
// in-process loopback and a length-prefixed TCP implementation with the
// simulation engines' exact crash semantics, and cmd/blserve runs n OS
// processes against a coordinator on real sockets, including scripted
// mid-broadcast crash injection. See ARCHITECTURE.md for how the engines
// and the transport relate and which tests pin them to each other.
package ballsintoleaves

import (
	"fmt"
	"sort"

	"ballsintoleaves/internal/baseline"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/runtime"
	"ballsintoleaves/internal/sim"
)

// Rename simulates one complete execution of the selected renaming
// algorithm over n processes and returns the outcome. By default it runs
// Balls-into-Leaves failure-free on the fast simulator with seed 0 and
// random process identifiers.
func Rename(n int, opts ...Option) (*Result, error) {
	o, err := buildOptions(n, opts)
	if err != nil {
		return nil, err
	}
	switch o.algorithm {
	case NaiveRandom:
		return renameNaive(o)
	default:
		return renameTree(o)
	}
}

// renameTree runs the tree-based algorithms (Balls-into-Leaves and its
// variants) on the requested engine.
func renameTree(o *options) (*Result, error) {
	cfg := core.Config{
		N:               o.n,
		Seed:            o.seed,
		Strategy:        o.algorithm.strategy(),
		Arity:           o.arity,
		Budget:          o.budget,
		MaxRounds:       o.maxRounds,
		Metrics:         o.metrics,
		CheckInvariants: o.checkInvariants,
	}
	if o.engine == FastEngine {
		cfg.Adversary = o.crashes.build()
		c, err := core.NewCohort(cfg, o.ids)
		if err != nil {
			return nil, err
		}
		res, err := c.Run()
		if err != nil {
			return nil, err
		}
		return resultFromCohort(res, o), nil
	}
	balls, err := core.NewBalls(cfg, o.ids)
	if err != nil {
		return nil, err
	}
	procs := core.Processes(balls)
	var engRes sim.Result
	switch o.engine {
	case ReferenceEngine:
		eng, err := sim.New(sim.Config{Adversary: o.crashes.build(), Budget: o.budget, MaxRounds: o.maxRounds}, procs)
		if err != nil {
			return nil, err
		}
		engRes, err = eng.Run()
		if err != nil {
			return nil, err
		}
	case ConcurrentEngine:
		eng, err := runtime.New(runtime.Config{Adversary: o.crashes.build(), Budget: o.budget, MaxRounds: o.maxRounds}, procs)
		if err != nil {
			return nil, err
		}
		engRes, err = eng.Run()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("ballsintoleaves: unknown engine %v", o.engine)
	}
	return resultFromEngine(engRes, o), nil
}

// renameNaive runs the flat randomized baseline. Failure-free runs use the
// fast central simulation; runs with crashes fall back to the reference
// engine automatically.
func renameNaive(o *options) (*Result, error) {
	if o.crashes.isNone() && o.engine == FastEngine {
		rounds, names, decRounds, err := baseline.RunNaiveFast(o.n, o.seed, o.ids)
		if err != nil {
			return nil, err
		}
		res := newResult(o, rounds, rounds)
		for i, id := range sortedIDs(o.ids) {
			res.Names[uint64(id)] = names[i]
			res.DecisionRound[uint64(id)] = decRounds[i]
		}
		return res, nil
	}
	procs, err := baseline.NewNaiveBalls(o.n, o.seed, o.ids)
	if err != nil {
		return nil, err
	}
	eng, err := sim.New(sim.Config{Adversary: o.crashes.build(), Budget: o.budget, MaxRounds: o.maxRounds}, procs)
	if err != nil {
		return nil, err
	}
	engRes, err := eng.Run()
	if err != nil {
		return nil, err
	}
	return resultFromEngine(engRes, o), nil
}

// sortedIDs returns the ids in ascending order.
func sortedIDs(in []proto.ID) []proto.ID {
	out := make([]proto.ID, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
