module ballsintoleaves

go 1.24
